"""Unit tests for the DRAM and SRAM energy models."""

import pytest

from repro import RefreshMode, SystemConfig
from repro.energy import (
    SRAM_ACCESS_NJ,
    SRAM_LATENCY_CYCLES,
    DramEnergyParams,
    dram_energy,
    sram_access_nj,
    sram_energy_nj,
    system_energy,
)
from repro.stats.collectors import ControllerStats


def stats(**kw) -> ControllerStats:
    s = ControllerStats()
    for k, v in kw.items():
        setattr(s, k, v)
    return s


CFG = SystemConfig.single_core()
P = DramEnergyParams()


class TestDramEnergy:
    def test_background_scales_with_time(self):
        a = dram_energy(stats(end_cycle=1000), CFG)
        b = dram_energy(stats(end_cycle=2000), CFG)
        assert b.background == pytest.approx(2 * a.background)

    def test_background_scales_with_ranks(self):
        quad = SystemConfig.quad_core()
        a = dram_energy(stats(end_cycle=1000), CFG)
        b = dram_energy(stats(end_cycle=1000), quad)
        assert b.background == pytest.approx(4 * a.background)

    def test_background_unit_sanity(self):
        # 330 mW for 1 s (8e8 cycles at 1.25 ns) = 0.33 J = 3.3e8 nJ
        e = dram_energy(stats(end_cycle=800_000_000), CFG)
        assert e.background == pytest.approx(0.33e9, rel=0.01)

    def test_refresh_energy_per_command(self):
        e = dram_energy(stats(refreshes=10), CFG)
        assert e.refresh == pytest.approx(10 * P.refresh_nj)

    def test_fgr_scales_refresh_energy(self):
        cfg2 = CFG.with_refresh_mode(RefreshMode.FGR_2X)
        e = dram_energy(stats(refreshes=10), cfg2)
        # each FGR-2x REF locks for tRFC2 < tRFC → less energy per REF
        assert e.refresh < 10 * P.refresh_nj
        assert e.refresh == pytest.approx(
            10 * P.refresh_nj * cfg2.effective_timings().rfc / CFG.timings.rfc
        )

    def test_event_energies(self):
        e = dram_energy(
            stats(row_closed=3, row_conflicts=2, reads=7, writes=4, prefetches=1), CFG
        )
        assert e.activate == pytest.approx(5 * P.act_pre_nj)
        assert e.read == pytest.approx(8 * P.read_nj)  # prefetches are reads
        assert e.write == pytest.approx(4 * P.write_nj)

    def test_total_is_sum(self):
        e = dram_energy(stats(end_cycle=100, refreshes=2, reads=3), CFG)
        assert e.total == pytest.approx(
            e.background + e.activate + e.read + e.write + e.refresh + e.sram
        )

    def test_refresh_fraction(self):
        e = dram_energy(stats(end_cycle=10_000, refreshes=5), CFG)
        assert 0 < e.refresh_fraction < 1

    def test_custom_params(self):
        params = DramEnergyParams(refresh_nj=1000.0)
        e = dram_energy(stats(refreshes=1), CFG, params)
        assert e.refresh == 1000.0


class TestSramEnergy:
    def test_table3_exact_values(self):
        assert sram_access_nj(16) == 0.0132
        assert sram_access_nj(32) == 0.0135
        assert sram_access_nj(64) == 0.0137
        assert sram_access_nj(128) == 0.0152

    def test_table3_latency(self):
        assert SRAM_LATENCY_CYCLES == 3

    def test_interpolation_between_sizes(self):
        mid = sram_access_nj(48)
        assert SRAM_ACCESS_NJ[32] < mid < SRAM_ACCESS_NJ[64]

    def test_extrapolation_monotone(self):
        assert sram_access_nj(256) > SRAM_ACCESS_NJ[128]
        assert sram_access_nj(8) == SRAM_ACCESS_NJ[16]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            sram_access_nj(0)

    def test_dynamic_plus_leakage(self):
        time_ns = 1e6
        e = sram_energy_nj(64, reads=100, writes=50, active_time_ns=time_ns)
        dyn = 150 * SRAM_ACCESS_NJ[64]
        leak = 0.002 * 64 * time_ns * 1e-3  # mW · ns → nJ
        assert e == pytest.approx(dyn + leak)
        # leakage is negligible against DRAM background power (330 mW/rank)
        assert leak / (330.0 * time_ns * 1e-3) < 0.001


class TestSystemEnergy:
    def test_no_rop_no_sram_term(self):
        e = system_energy(stats(end_cycle=1000), CFG)
        assert e.sram == 0.0

    def test_rop_adds_sram_term(self):
        cfg = CFG.with_rop()
        s = stats(end_cycle=1000, sram_fills=10, sram_hits_in_lock=5)
        e = system_energy(s, cfg)
        assert e.sram > 0

    def test_sram_term_is_small(self):
        # the paper: SRAM "slightly" increases memory power
        cfg = CFG.with_rop()
        s = stats(end_cycle=1_000_000, sram_fills=1000, sram_hits_in_lock=500)
        e = system_energy(s, cfg)
        assert e.sram / e.total < 0.01
