"""Smoke + shape tests for the experiment harness at tiny scale."""

import pytest

from repro import SystemConfig
from repro.harness import (
    RunScale,
    alone_ipc,
    fig1_refresh_overheads,
    fig2_to_4_and_table1,
    fig7_8_9_rop_comparison,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    reporting,
    run_benchmark,
    run_mix,
    scale_from_env,
    three_systems,
)

SC = RunScale.named("smoke")
BENCHES = ("lbm", "gobmk")


class TestScales:
    def test_named_scales(self):
        assert RunScale.named("smoke").instructions < RunScale.named("paper").instructions
        with pytest.raises(KeyError):
            RunScale.named("galactic")

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env().instructions == RunScale.named("smoke").instructions
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env("paper").instructions == RunScale.named("paper").instructions


class TestRunBenchmark:
    def test_run_produces_metrics(self):
        r = run_benchmark("lbm", SystemConfig.single_core(), SC, system="baseline")
        assert r.ipc > 0
        assert r.energy.total > 0
        assert r.benchmark == "lbm" and r.system == "baseline"

    def test_alone_ipc_memoized(self):
        cfg = SystemConfig.quad_core()
        a = alone_ipc("gobmk", cfg.llc, SC, cfg)
        b = alone_ipc("gobmk", cfg.llc, SC, cfg)
        assert a == b > 0


class TestFig1:
    def test_rows_and_signs(self):
        rows = fig1_refresh_overheads(BENCHES, SC)
        assert [r["benchmark"] for r in rows] == list(BENCHES)
        for r in rows:
            assert r["perf_degradation_pct"] >= 0.0
            assert r["energy_overhead_pct"] > 0.0

    def test_render(self):
        out = reporting.render_fig1(fig1_refresh_overheads(("gobmk",), SC))
        assert "gobmk" in out and "AVERAGE" in out


class TestFig234Table1:
    def test_analysis_rows(self):
        rows = fig2_to_4_and_table1(BENCHES, SC)
        for row in rows:
            assert set(row.windows) == {1.0, 2.0, 4.0}
            wa = row.windows[1.0]
            assert wa.refreshes >= 0
        # continuous lbm: every refresh is blocking at the 1× window
        lbm = rows[0].windows[1.0]
        assert lbm.non_blocking_fraction < 0.1
        # sparse gobmk: almost all refreshes non-blocking (Fig. 2 shape)
        gob = rows[1].windows[1.0]
        assert gob.non_blocking_fraction > 0.7

    def test_blocked_counts_small(self):
        rows = fig2_to_4_and_table1(BENCHES, SC)
        for r in rows:
            # Fig. 3: each blocking refresh blocks only a handful of reads
            assert r.avg_blocked < 15
            assert r.max_blocked <= 64

    def test_renders(self):
        rows = fig2_to_4_and_table1(("gobmk",), SC)
        for render in (
            reporting.render_table1,
            reporting.render_fig2,
            reporting.render_fig3,
            reporting.render_fig4,
        ):
            assert "gobmk" in render(rows)


class TestFig789:
    def test_structure(self):
        rows = fig7_8_9_rop_comparison(("lbm",), SC, sram_sizes=(16, 64))
        row = rows[0]
        assert set(row["rop"]) == {16, 64}
        assert row["norm_ipc_norefresh"] > 1.0  # refresh hurts lbm
        for size in (16, 64):
            assert row["rop"][size]["norm_ipc"] > 0.9

    def test_render(self):
        rows = fig7_8_9_rop_comparison(("lbm",), SC, sram_sizes=(64,))
        assert "lbm" in reporting.render_fig7_8_9(rows)


class TestMulticore:
    def test_three_systems(self):
        systems = three_systems()
        assert set(systems) == {"Baseline", "Baseline-RP", "ROP"}
        assert systems["ROP"].rop.enabled
        assert not systems["Baseline"].rop.enabled

    def test_three_systems_llc_override(self):
        systems = three_systems(1 << 20)
        assert all(c.llc.size_bytes == 1 << 20 for c in systems.values())

    def test_run_mix(self):
        r = run_mix("WL6", SystemConfig.quad_core(), SC, system="RP")
        assert 0 < r.weighted_speedup <= 4.0
        assert len(r.result.cores) == 4

    def test_fig10_structure(self):
        rows = fig10_11_weighted_speedup(("WL6",), SC)
        row = rows[0]
        assert row["norm_ws"]["Baseline"] == pytest.approx(1.0)
        assert row["norm_energy"]["Baseline"] == pytest.approx(1.0)
        assert row["norm_ws"]["Baseline-RP"] > 0.9
        assert "ROP" in row["ws"]

    def test_fig12_structure(self):
        rows = fig12_13_14_llc_sensitivity(
            ("WL6",), SC, llc_sweep=(1 << 20, 2 << 20)
        )
        row = rows[0]
        assert set(row["llc"]) == {1 << 20, 2 << 20}
        for llc, data in row["llc"].items():
            assert set(data["norm_ws"]) == {"Baseline", "Baseline-RP", "ROP"}

    def test_renders(self):
        rows = fig10_11_weighted_speedup(("WL6",), SC)
        assert "WL6" in reporting.render_fig10_11(rows)
        srows = fig12_13_14_llc_sensitivity(("WL6",), SC, llc_sweep=(1 << 20,))
        assert "WL6" in reporting.render_llc_sensitivity(srows)
        assert "WL6" in reporting.render_llc_sensitivity(srows, "rop_armed_hit_rate")
