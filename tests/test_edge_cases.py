"""Edge-case and failure-injection tests across the stack."""

import pytest

from repro import (
    LlcConfig,
    MemoryOrganization,
    RefreshMode,
    SystemConfig,
)
from repro.cpu import filter_trace, run_cores
from repro.dram import MemorySystem
from repro.workloads.trace import AccessTrace


class TestExtremeGeometries:
    def test_single_bank_rank(self):
        org = MemoryOrganization(banks=1, rows=1 << 8, columns=16)
        cfg = SystemConfig(organization=org)
        ms = MemorySystem(cfg)
        for i in range(200):
            ms.schedule_read(i % org.total_lines, i * 30)
        ms.run()
        assert ms.finish().reads_completed == 200

    def test_two_channel_memory(self):
        org = MemoryOrganization(channels=2, ranks=2)
        cfg = SystemConfig(organization=org)
        ms = MemorySystem(cfg)
        for i in range(500):
            ms.schedule_read((i * 12345) % org.total_lines, i * 10)
        ms.run()
        assert ms.finish().reads_completed == 500

    def test_rop_on_multi_channel(self):
        org = MemoryOrganization(channels=2, ranks=2)
        cfg = SystemConfig(organization=org).with_rop(training_refreshes=3)
        ms = MemorySystem(cfg)
        for i in range(4000):
            ms.schedule_read(i, i * 8)
        ms.run()
        st = ms.finish()
        assert st.reads_completed == 4000

    def test_tiny_rows(self):
        org = MemoryOrganization(rows=2, columns=2, banks=2)
        cfg = SystemConfig(organization=org)
        ms = MemorySystem(cfg)
        for i in range(50):
            ms.schedule_read(i % org.total_lines, i * 40)
        ms.run()
        assert ms.finish().reads_completed == 50


class TestDegenerateTraffic:
    def test_same_line_hammer(self):
        ms = MemorySystem(SystemConfig.single_core())
        for i in range(1000):
            ms.schedule_read(42, i * 6)
        ms.run()
        st = ms.finish()
        assert st.reads_completed == 1000
        assert st.row_hit_rate > 0.99

    def test_simultaneous_arrivals(self):
        ms = MemorySystem(SystemConfig.single_core())
        for i in range(32):
            ms.schedule_read(i * 1000, 100)  # all at the same cycle
        ms.run()
        assert ms.finish().reads_completed == 32

    def test_write_only_workload_with_rop(self):
        cfg = SystemConfig.single_core().with_rop(training_refreshes=3)
        ms = MemorySystem(cfg)
        for i in range(3000):
            ms.schedule_write(i, i * 15)
        ms.run()
        st = ms.finish()
        assert st.writes == 3000
        assert st.sram_hits == 0  # nothing to serve

    def test_single_request(self):
        ms = MemorySystem(SystemConfig.single_core())
        req = ms.submit_read(7, 0)
        ms.run()
        assert req.complete_cycle > 0
        assert req.latency == req.complete_cycle - req.arrival

    def test_zero_length_core_trace(self):
        tr = AccessTrace.from_lists([], [], [])
        r = run_cores([tr], SystemConfig.single_core())
        assert r.cores[0].instructions == 0


class TestConfigValidation:
    def test_rop_window_positive(self):
        from repro.core.profiler import PatternProfiler

        with pytest.raises(ValueError):
            PatternProfiler(window=-5)

    def test_sram_one_line_works(self):
        cfg = SystemConfig.single_core().with_rop(sram_lines=1, training_refreshes=3)
        ms = MemorySystem(cfg)
        for i in range(3000):
            ms.schedule_read(i, i * 12)
        ms.run()
        assert ms.finish().reads_completed == 3000

    def test_llc_single_way(self):
        llc = LlcConfig(size_bytes=64 * 64, ways=1)
        tr = AccessTrace.from_lists([1, 1, 1], [0, 64, 0], [False] * 3)
        res = filter_trace(tr, llc)
        assert res.misses == 3  # 0 and 64 alias in the direct-mapped set


class TestRefreshModeInteractions:
    @pytest.mark.parametrize(
        "mode",
        [
            RefreshMode.AUTO_1X,
            RefreshMode.FGR_2X,
            RefreshMode.FGR_4X,
            RefreshMode.PER_BANK,
            RefreshMode.ELASTIC,
            RefreshMode.PAUSING,
            RefreshMode.NONE,
        ],
    )
    def test_every_mode_completes_traffic(self, mode):
        ms = MemorySystem(SystemConfig.single_core().with_refresh_mode(mode))
        for i in range(2500):
            ms.schedule_read(i, i * 9)
        ms.run()
        assert ms.finish().reads_completed == 2500

    def test_rop_with_fgr(self):
        cfg = SystemConfig.single_core().with_refresh_mode(RefreshMode.FGR_2X)
        cfg = cfg.with_rop(training_refreshes=5)
        ms = MemorySystem(cfg)
        for i in range(6000):
            ms.schedule_read(i, i * 10)
        ms.run()
        st = ms.finish()
        assert st.reads_completed == 6000
        assert st.refreshes > 0

    def test_rop_with_unstaggered_ranks(self):
        from repro import RefreshConfig
        from dataclasses import replace

        cfg = SystemConfig.quad_core().with_rop(training_refreshes=3)
        cfg = replace(cfg, refresh=RefreshConfig(stagger=False))
        ms = MemorySystem(cfg)
        for i in range(2000):
            ms.schedule_read(i * 64, i * 12)
        ms.run()
        assert ms.finish().reads_completed == 2000


class TestBusAccounting:
    def test_busy_cycles_bounded_by_time(self):
        ms = MemorySystem(SystemConfig.single_core())
        for i in range(4000):
            ms.schedule_read(i, i * 6)
        ms.run()
        ch = ms.controller.channels[0]
        assert ch.busy_cycles <= ms.now
        assert ch.busy_cycles == 4000 * ms.controller.t.burst
