"""Property-based tests of the pure algebraic components.

Three families:

* address mapping — ``decode``/``encode`` round-trip on every scheme,
  and the vectorized ``decode_array`` agreeing element-for-element with
  scalar ``decode``;
* the prediction table's saturating counters — halving on overflow
  keeps every frequency below ``FREQ_CAP`` while preserving relative
  order;
* ``MetricsRegistry.merge`` — associative and commutative over snapshot
  dicts (the parallel runner merges per-chunk metrics in arbitrary
  completion order, so this is load-bearing, not aesthetic).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro import MemoryOrganization
from repro.config import AddressMapScheme
from repro.core.prediction_table import BankEntry, FREQ_CAP
from repro.dram.address_mapping import AddressMapper
from repro.telemetry import MetricsRegistry

# ---------------------------------------------------------------- address map

_ORGS = st.builds(
    MemoryOrganization,
    channels=st.sampled_from([1, 2]),
    ranks=st.sampled_from([1, 2, 4]),
    banks=st.sampled_from([4, 8]),
    rows=st.sampled_from([1 << 8, 1 << 10]),
    columns=st.sampled_from([32, 128]),
)

_SCHEMES = st.sampled_from(list(AddressMapScheme))


@given(org=_ORGS, scheme=_SCHEMES, data=st.data())
def test_decode_encode_round_trip(org, scheme, data):
    mapper = AddressMapper(org, scheme)
    line = data.draw(st.integers(0, org.total_lines - 1))
    coord = mapper.decode(line)
    assert 0 <= coord.channel < org.channels
    assert 0 <= coord.rank < org.ranks
    assert 0 <= coord.bank < org.banks
    assert 0 <= coord.row < org.rows
    assert 0 <= coord.col < org.columns
    assert mapper.encode(coord) == line


@given(org=_ORGS, scheme=_SCHEMES, data=st.data())
def test_decode_array_matches_scalar(org, scheme, data):
    mapper = AddressMapper(org, scheme)
    lines = data.draw(
        st.lists(st.integers(0, org.total_lines - 1), min_size=1, max_size=64)
    )
    arr = np.asarray(lines, dtype=np.int64)
    chan, rank, bank, row, col = mapper.decode_array(arr)
    for i, line in enumerate(lines):
        c = mapper.decode(line)
        assert (chan[i], rank[i], bank[i], row[i], col[i]) == (
            c.channel,
            c.rank,
            c.bank,
            c.row,
            c.col,
        )


# ------------------------------------------------------------ delta counters


@given(
    deltas=st.lists(st.sampled_from([1, 1, 1, 2, -3, 64]), min_size=1, max_size=600)
)
def test_frequency_counters_never_reach_cap(deltas):
    """Overflow halving keeps every counter strictly below FREQ_CAP."""
    entry = BankEntry(0)
    addr = 1 << 20
    entry.update(addr)
    for d in deltas:
        addr += d
        entry.update(addr)
        assert entry.f1 < FREQ_CAP
        assert entry.f2 < FREQ_CAP
        assert entry.f3 < FREQ_CAP


def test_halving_fires_and_preserves_order():
    """A long unit-stride stream overflows f1; all three halve together."""
    entry = BankEntry(0)
    addr = 0
    entry.update(addr)
    peak = 0
    halved = False
    for _ in range(3 * FREQ_CAP):
        prev = (entry.f1, entry.f2, entry.f3)
        addr += 1
        entry.update(addr)
        peak = max(peak, entry.f1)
        if entry.f1 < prev[0]:
            halved = True
            # the halving event divides every counter by two at once
            assert entry.f1 == (prev[0] + 1) // 2
            assert entry.f2 in ((prev[1] + 1) // 2, (prev[1] + 1) // 2 + 1)
        # relative order among the three patterns survives halving
        assert entry.f1 >= entry.f2 >= entry.f3
    assert halved, "3*FREQ_CAP identical deltas must overflow the counters"
    assert peak == FREQ_CAP - 1


# ------------------------------------------------------------- metrics merge

# integer-valued floats keep float addition exactly associative, so the
# algebraic properties are tested without FP-rounding noise
_VALUES = st.integers(0, 1000).map(float)

_BOUNDS = (10.0, 100.0)


@st.composite
def _snapshots(draw):
    reg = MetricsRegistry()
    for name in draw(st.lists(st.sampled_from(["a", "b", "c"]), max_size=3)):
        reg.count(f"ctr.{name}", int(draw(_VALUES)))
    for name, kind in draw(
        st.lists(
            st.tuples(st.sampled_from(["g", "h"]), st.sampled_from(["", ".max", ".min"])),
            max_size=3,
        )
    ):
        reg.gauge(f"gauge.{name}{kind}", draw(_VALUES), weight=draw(st.integers(1, 4)))
    for _ in range(draw(st.integers(0, 3))):
        reg.observe("hist.lat", draw(_VALUES), bounds=_BOUNDS)
    return reg.snapshot()


@given(a=_snapshots(), b=_snapshots())
def test_merge_commutative(a, b):
    assert MetricsRegistry.merge([a, b]) == MetricsRegistry.merge([b, a])


@given(a=_snapshots(), b=_snapshots(), c=_snapshots())
def test_merge_associative(a, b, c):
    left = MetricsRegistry.merge([MetricsRegistry.merge([a, b]), c])
    right = MetricsRegistry.merge([a, MetricsRegistry.merge([b, c])])
    assert left == right


@given(a=_snapshots())
def test_merge_identity(a):
    """Merging with an empty snapshot is a normalization no-op."""
    merged = MetricsRegistry.merge([a, {}])
    assert merged == MetricsRegistry.merge([a])
