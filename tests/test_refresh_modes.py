"""Integration tests for the alternative refresh schemes (extensions).

The paper compares ROP against auto-refresh and no-refresh only, but its
related-work section names the mechanisms implemented here: JEDEC FGR
(Mukundan et al.), Elastic Refresh (Stuecheli et al.), Refresh Pausing
(Nair et al.) and per-bank refresh (the paper's own future work).
"""

import pytest

from repro import RefreshConfig, RefreshMode, SystemConfig
from repro.cpu import run_cores
from repro.dram import MemorySystem
from repro.workloads.trace import AccessTrace


def stream_trace(n=6000, gap=5):
    return AccessTrace.from_lists([gap] * n, list(range(n)), [False] * n)


def ipc_of(mode, trace=None, **refresh_kwargs):
    cfg = SystemConfig.single_core()
    if refresh_kwargs:
        cfg = cfg.__class__(
            **{**cfg.__dict__, "refresh": RefreshConfig(mode=mode, **refresh_kwargs)}
        )
    else:
        cfg = cfg.with_refresh_mode(mode)
    return run_cores([trace if trace is not None else stream_trace()], cfg)


class TestPausing:
    def test_refresh_work_conserved(self):
        r = ipc_of(RefreshMode.PAUSING)
        auto = ipc_of(RefreshMode.AUTO_1X)
        # pausing performs the same total refresh work (±1 in-flight REF)
        assert abs(r.stats.refreshes - auto.stats.refreshes) <= 1
        t = SystemConfig.single_core().timings
        assert r.stats.refresh_locked_cycles == pytest.approx(
            r.stats.refreshes * t.rfc, rel=0.01
        )

    def test_pausing_beats_auto_under_load(self):
        r = ipc_of(RefreshMode.PAUSING)
        auto = ipc_of(RefreshMode.AUTO_1X)
        assert r.ipc > auto.ipc

    def test_pausing_below_ideal(self):
        r = ipc_of(RefreshMode.PAUSING)
        ideal = ipc_of(RefreshMode.NONE)
        assert r.ipc <= ideal.ipc + 1e-9

    def test_pausing_reduces_latency(self):
        # under continuous demand pausing degenerates to postponement (it
        # must force completion by the deadline), which still shifts locks
        # away from traffic — assert the average benefit
        r = ipc_of(RefreshMode.PAUSING)
        auto = ipc_of(RefreshMode.AUTO_1X)
        assert r.stats.avg_read_latency < auto.stats.avg_read_latency

    def test_pausing_interrupts_lock_for_bursty_traffic(self):
        # moderate traffic leaves queue-empty moments: locks get segmented
        # and a read colliding with a refresh waits far less than tRFC
        gaps = [160] * 2000
        tr = AccessTrace.from_lists(gaps, list(range(2000)), [False] * 2000)
        r = ipc_of(RefreshMode.PAUSING, trace=tr)
        t = SystemConfig.single_core().timings
        assert r.stats.read_latency_max < t.rfc

    def test_idle_memory_still_completes_refreshes(self):
        ms = MemorySystem(SystemConfig.single_core().with_refresh_mode(RefreshMode.PAUSING))
        t = ms.controller.t
        ms.schedule_read(0, 3 * t.refi)  # sparse demand keeps sim alive
        ms.run()
        assert ms.stats.refreshes >= 3

    def test_segment_count_respected(self):
        cfg = SystemConfig.single_core()
        cfg = cfg.__class__(
            **{
                **cfg.__dict__,
                "refresh": RefreshConfig(mode=RefreshMode.PAUSING, pause_segments=4),
            }
        )
        ms = MemorySystem(cfg, record_events=True)
        for i in range(4000):
            ms.schedule_read(i, i * 5)
        ms.run()
        ev = ms.recorder.rank_events(0, 0)
        t = ms.controller.t
        seg = t.rfc // 4
        for s, e in zip(ev.refresh_starts, ev.refresh_ends):
            assert e - s <= t.rfc
            assert (e - s) % seg == 0 or (e - s) == t.rfc


class TestFgr:
    def test_fgr_issues_more_refreshes(self):
        auto = ipc_of(RefreshMode.AUTO_1X)
        fgr2 = ipc_of(RefreshMode.FGR_2X)
        fgr4 = ipc_of(RefreshMode.FGR_4X)
        assert fgr2.stats.refreshes > auto.stats.refreshes
        assert fgr4.stats.refreshes > fgr2.stats.refreshes

    def test_fgr_total_lock_time_grows(self):
        auto = ipc_of(RefreshMode.AUTO_1X)
        fgr4 = ipc_of(RefreshMode.FGR_4X)
        assert fgr4.stats.refresh_locked_cycles > auto.stats.refresh_locked_cycles

    def test_fgr_shortens_individual_lock(self):
        auto = ipc_of(RefreshMode.AUTO_1X)
        fgr4 = ipc_of(RefreshMode.FGR_4X)
        assert fgr4.stats.read_latency_max < auto.stats.read_latency_max


class TestElastic:
    def test_elastic_helps_bursty_traffic(self):
        # bursts with idle gaps: postponement moves REFs into the gaps
        gaps = ([2] * 200 + [3000]) * 12
        n = len(gaps)
        tr = AccessTrace.from_lists(gaps, list(range(n)), [False] * n)
        auto = ipc_of(RefreshMode.AUTO_1X, trace=tr)
        el = ipc_of(RefreshMode.ELASTIC, trace=tr)
        assert el.stats.refreshes >= auto.stats.refreshes - 8
        assert el.ipc >= auto.ipc * 0.999


class TestPerBank:
    def test_per_bank_beats_all_bank_for_stream(self):
        auto = ipc_of(RefreshMode.AUTO_1X)
        pb = ipc_of(RefreshMode.PER_BANK)
        assert pb.ipc > auto.ipc

    def test_per_bank_leaves_rank_unlocked(self):
        ms = MemorySystem(SystemConfig.single_core().with_refresh_mode(RefreshMode.PER_BANK))
        t = ms.controller.t
        for i in range(2000):
            ms.schedule_read(i, i * 10)
        ms.run()
        # no demand read was flagged as arriving inside a *rank* lock
        assert ms.stats.reads_arriving_in_lock == 0
