"""Unit + property tests for the offline refresh analysis (Figs. 2–4,
Table I)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.collectors import RankEvents
from repro.stats.refresh_analysis import (
    analyze_rank,
    blocked_per_refresh,
    merge_rank_events,
)

W = 100


def events(reads=(), writes=(), refreshes=(), rfc=10):
    ev = RankEvents()
    ev.read_arrivals = sorted(reads)
    ev.write_arrivals = sorted(writes)
    ev.refresh_starts = sorted(refreshes)
    ev.refresh_ends = [s + rfc for s in ev.refresh_starts]
    return ev


def test_lambda_simple():
    # refresh at 200: B has the read at 150, A has the read at 250
    ev = events(reads=[150, 250], refreshes=[200])
    wa = analyze_rank(ev, W)
    assert wa.lam == 1.0
    assert np.isnan(wa.beta)  # B=0 never occurred


def test_beta_simple():
    ev = events(reads=[1000], refreshes=[200])
    wa = analyze_rank(ev, W)
    assert wa.beta == 1.0
    assert np.isnan(wa.lam)


def test_writes_count_in_b_only():
    ev = events(writes=[150, 250], refreshes=[200])
    wa = analyze_rank(ev, W)
    assert wa.b_counts[0] == 1  # the write at 150
    assert wa.a_counts[0] == 0  # the write at 250 is not a blocked read


def test_e1_e2_fractions():
    ev = events(
        reads=[150, 250, 1150, 1250],  # refresh 200: E1; refresh 2000: E2
        refreshes=[200, 2000],
    )
    wa = analyze_rank(ev, W)
    assert wa.e1_fraction == pytest.approx(0.5)
    assert wa.e2_fraction == pytest.approx(0.5)
    assert wa.dominant_fraction == 1.0


def test_non_blocking_fraction():
    ev = events(reads=[250], refreshes=[200, 2000, 4000])
    wa = analyze_rank(ev, W)
    assert wa.non_blocking_fraction == pytest.approx(2 / 3)


def test_a_window_override():
    ev = events(reads=[205], refreshes=[200])
    assert analyze_rank(ev, W, a_window=10).a_counts[0] == 1
    assert analyze_rank(ev, W, a_window=4).a_counts[0] == 0


def test_blocked_per_refresh_uses_lock_window():
    ev = events(reads=[202, 205, 250], refreshes=[200], rfc=10)
    blocked = blocked_per_refresh(ev)
    assert blocked.tolist() == [2]  # 202 and 205 inside [200, 210)


def test_empty_events():
    wa = analyze_rank(events(), W)
    assert wa.refreshes == 0
    assert wa.non_blocking_fraction == 0.0
    assert wa.dominant_fraction == 0.0


def test_merge_rank_events():
    a = events(reads=[10], refreshes=[100])
    b = events(reads=[5, 20], refreshes=[50])
    merged = merge_rank_events([a, b])
    assert merged.read_arrivals == [5, 10, 20]
    assert merged.refresh_starts == [50, 100]
    assert merged.refresh_ends == [60, 110]


# ---------------------------------------------------------------- properties


@given(
    reads=st.lists(st.integers(0, 3000), max_size=50),
    writes=st.lists(st.integers(0, 3000), max_size=30),
    refreshes=st.lists(st.integers(200, 2800), min_size=1, max_size=10, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_analysis_matches_bruteforce(reads, writes, refreshes):
    ev = events(reads=reads, writes=writes, refreshes=refreshes)
    wa = analyze_rank(ev, W)
    reads_s = sorted(reads)
    all_s = sorted(reads + writes)
    starts = sorted(refreshes)
    for i, t in enumerate(starts):
        b = sum(1 for x in all_s if t - W <= x < t)
        a = sum(1 for x in reads_s if t <= x < t + W)
        assert wa.b_counts[i] == b
        assert wa.a_counts[i] == a


@given(
    reads=st.lists(st.integers(0, 3000), min_size=1, max_size=60),
    refreshes=st.lists(st.integers(100, 2900), min_size=2, max_size=12, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_lambda_beta_are_probabilities(reads, refreshes):
    wa = analyze_rank(events(reads=reads, refreshes=refreshes), W)
    for v in (wa.lam, wa.beta):
        assert np.isnan(v) or 0.0 <= v <= 1.0
    assert 0.0 <= wa.dominant_fraction <= 1.0
    assert wa.e1_fraction + wa.e2_fraction <= 1.0 + 1e-12
