"""Unit + property tests for the last-level cache filter."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import LlcConfig
from repro.cpu.llc import Llc, filter_trace
from repro.workloads.trace import AccessTrace

SMALL = LlcConfig(size_bytes=16 * 1024, ways=4)  # 64 sets


def trace_of(lines, writes=None, gaps=None):
    n = len(lines)
    return AccessTrace.from_lists(
        gaps if gaps is not None else [1] * n,
        lines,
        writes if writes is not None else [False] * n,
    )


class TestLlcObject:
    def test_first_access_misses(self):
        c = Llc(SMALL)
        miss, victim = c.access(5, False)
        assert miss and victim is None

    def test_second_access_hits(self):
        c = Llc(SMALL)
        c.access(5, False)
        miss, _ = c.access(5, False)
        assert not miss

    def test_lru_eviction_order(self):
        c = Llc(SMALL)
        nsets = c.num_sets
        lines = [i * nsets for i in range(SMALL.ways + 1)]  # all map to set 0
        for l in lines[:-1]:
            c.access(l, False)
        c.access(lines[0], False)  # touch to make MRU
        miss, victim = c.access(lines[-1], False)
        assert miss
        # victim is the least recently used = lines[1] (clean → no WB line)
        assert victim is None
        assert not c.contains(lines[1])
        assert c.contains(lines[0])

    def test_dirty_eviction_returns_victim(self):
        c = Llc(SMALL)
        nsets = c.num_sets
        lines = [i * nsets for i in range(SMALL.ways + 1)]
        c.access(lines[0], True)  # dirty
        for l in lines[1:-1]:
            c.access(l, False)
        miss, victim = c.access(lines[-1], False)
        assert victim == lines[0]

    def test_write_hit_dirties(self):
        c = Llc(SMALL)
        nsets = c.num_sets
        c.access(0, False)
        c.access(0, True)  # dirty via write hit
        for i in range(1, SMALL.ways + 1):
            _, victim = c.access(i * nsets, False)
        assert victim == 0

    def test_occupancy(self):
        c = Llc(SMALL)
        for i in range(10):
            c.access(i, False)
        assert c.occupancy == 10


class TestFilterTrace:
    def test_all_misses_pass_through(self):
        tr = trace_of(list(range(100)))
        res = filter_trace(tr, SMALL)
        assert res.misses == 100
        assert len(res.memory_trace) == 100
        assert res.miss_rate == 1.0

    def test_hits_filtered_out(self):
        tr = trace_of([1, 2, 3, 1, 2, 3, 1, 2, 3])
        res = filter_trace(tr, SMALL)
        assert res.misses == 3
        assert len(res.memory_trace) == 3

    def test_gaps_accumulate_across_hits(self):
        tr = trace_of([1, 1, 1, 2], gaps=[10, 20, 30, 40])
        res = filter_trace(tr, SMALL)
        mt = res.memory_trace
        assert list(mt.gaps) == [10, 90]
        assert mt.total_instructions == tr.total_instructions

    def test_store_miss_fetches_line(self):
        # write-allocate: a store miss appears as a memory *read*
        tr = trace_of([7], writes=[True])
        mt = filter_trace(tr, SMALL).memory_trace
        assert len(mt) == 1 and not mt.writes[0]

    def test_writeback_emitted_on_dirty_eviction(self):
        nsets = SMALL.sets
        lines = [i * nsets for i in range(SMALL.ways + 1)]
        writes = [True] + [False] * SMALL.ways
        res = filter_trace(trace_of(lines, writes=writes), SMALL)
        assert res.writebacks == 1
        mt = res.memory_trace
        assert int(mt.writes.sum()) == 1
        wb_idx = int(np.argmax(mt.writes))
        assert mt.lines[wb_idx] == lines[0]
        assert mt.gaps[wb_idx] == 0  # write-backs carry no program progress

    def test_tail_instructions_preserved(self):
        tr = AccessTrace.from_lists([5], [1], [False], tail_instructions=100)
        mt = filter_trace(tr, SMALL).memory_trace
        assert mt.tail_instructions == 100

    def test_larger_cache_fewer_misses(self):
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 2048, size=5000)
        tr = trace_of(lines.tolist())
        small = filter_trace(tr, LlcConfig(size_bytes=16 * 1024, ways=4))
        big = filter_trace(tr, LlcConfig(size_bytes=256 * 1024, ways=4))
        assert big.misses < small.misses

    def test_working_set_fits_no_capacity_misses(self):
        # 64 distinct lines fit a 16 KB cache: repeat passes all hit
        lines = list(range(64)) * 10
        res = filter_trace(trace_of(lines), SMALL)
        assert res.misses == 64


# ---------------------------------------------------------------- properties


@given(
    lines=st.lists(st.integers(0, 255), min_size=1, max_size=300),
    writes_seed=st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_filter_matches_reference_model(lines, writes_seed):
    """The streaming filter agrees with a straightforward reference LLC."""
    rng = np.random.default_rng(writes_seed)
    writes = rng.random(len(lines)) < 0.3
    tr = trace_of(lines, writes=writes.tolist())
    cfg = LlcConfig(size_bytes=4 * 1024, ways=2)  # 32 sets: evictions likely
    res = filter_trace(tr, cfg)

    # reference: explicit LRU lists
    nsets = cfg.sets
    sets = {s: [] for s in range(nsets)}  # list of [line, dirty], LRU first
    expected = []  # (line, is_write)
    for line, wr in zip(lines, writes):
        s = sets[line % nsets]
        entry = next((e for e in s if e[0] == line), None)
        if entry:
            s.remove(entry)
            entry[1] = entry[1] or wr
            s.append(entry)
            continue
        expected.append((line, False))
        if len(s) >= cfg.ways:
            victim = s.pop(0)
            if victim[1]:
                expected.append((victim[0], True))
        s.append([line, wr])

    got = list(zip(res.memory_trace.lines.tolist(), res.memory_trace.writes.tolist()))
    assert got == expected


@given(lines=st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_instruction_conservation(lines):
    tr = trace_of(lines, gaps=[3] * len(lines))
    res = filter_trace(tr, SMALL)
    assert res.memory_trace.total_instructions == tr.total_instructions
