"""The differential validation subsystem itself: golden closed forms,
whole-run golden checks, failpoint coverage, the corpus loader, and the
`repro validate` CLI gate.

The failpoint tests are the suite's teeth: for every golden check, a
deliberately skewed model (``REPRO_FAULTS={"golden:<check>": k}``) must
produce a mismatch *naming that check* — proving the check actually
compares something, rather than vacuously passing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import MemoryOrganization, SystemConfig
from repro.core.prediction_table import FILL_UP_CONFIDENCE
from repro.harness.runner import RunSpec, classify_failure, run_spec, validation_enabled
from repro.validation import (
    CorpusEntry,
    GoldenMismatchError,
    Mismatch,
    config_for,
    golden_bank_budgets,
    golden_intra_bank_shares,
    golden_lambda_beta,
    load_corpus,
    render_mismatch_table,
    run_entry,
    stat_value,
    validate_traces,
)
from repro.workloads.trace import AccessTrace


def _arm(monkeypatch, tmp_path, mapping: dict) -> None:
    """Point REPRO_FAULTS at a fault file arming the given golden skews."""
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(mapping))
    monkeypatch.setenv("REPRO_FAULTS", str(path))


# ------------------------------------------------------------- closed forms


def test_lambda_beta_known_counts():
    # (E1, B>0∧A=0, B=0∧A>0, E2) — λ = 3/(3+1), β = 6/(2+6)
    lam, beta = golden_lambda_beta((3, 1, 2, 6))
    assert lam == pytest.approx(0.75)
    assert beta == pytest.approx(0.75)


def test_lambda_beta_undefined_conditionals_default_to_one():
    assert golden_lambda_beta((0, 0, 5, 5)) == (1.0, 0.5)
    assert golden_lambda_beta((5, 5, 0, 0)) == (0.5, 1.0)
    assert golden_lambda_beta((0, 0, 0, 0)) == (1.0, 1.0)


def test_bank_budgets_proportional_floor():
    assert golden_bank_budgets([1, 1, 2], 8) == [2, 2, 4]
    assert golden_bank_budgets([0, 0, 0], 8) == [0, 0, 0]
    # floors never oversubscribe the capacity
    for weights in ([3, 5, 7, 11], [1, 0, 0, 99], [2, 2, 2, 2]):
        assert sum(golden_bank_budgets(weights, 17)) <= 17


def test_intra_bank_shares_confident_strongest_absorbs_remainder():
    # w=14: floors are [5, 2, 1]; remainder 2 goes to confident f1
    assert golden_intra_bank_shares((8, 4, 2), 10) == [7, 2, 1]


def test_intra_bank_shares_weak_pattern_capped():
    # a lone weak pattern (f < FILL_UP_CONFIDENCE) is capped at
    # f × FILL_UP_CONFIDENCE projected lines and cannot take the remainder
    f = FILL_UP_CONFIDENCE - 1
    assert golden_intra_bank_shares((f, 0, 0), 100) == [f * FILL_UP_CONFIDENCE, 0, 0]


def test_intra_bank_shares_degenerate():
    assert golden_intra_bank_shares((0, 0, 0), 10) == [0, 0, 0]
    assert golden_intra_bank_shares((8, 4, 2), 0) == [0, 0, 0]
    for budget in (1, 5, 9, 16):
        assert sum(golden_intra_bank_shares((9, 5, 3), budget)) <= budget


# -------------------------------------------------- whole-run golden checks

_ORG = MemoryOrganization(channels=1, ranks=1, banks=4, rows=256, columns=32)


def _validation_config(rop: bool = True) -> SystemConfig:
    timings = SystemConfig().timings.with_refresh(refi=1200, rfc=100)
    cfg = SystemConfig.single_core(organization=_ORG, timings=timings)
    if rop:
        cfg = cfg.with_rop(training_refreshes=2, sram_lines=16)
    return cfg


def _stream_trace(n: int = 2000, gap: int = 40) -> AccessTrace:
    """Unit-stride reads: trains the prediction table into real prefetches."""
    return AccessTrace(
        gaps=np.full(n, gap, dtype=np.int64),
        lines=np.arange(n, dtype=np.int64) % _ORG.total_lines,
        writes=np.zeros(n, dtype=bool),
        tail_instructions=50,
    )


def test_clean_run_has_no_mismatches_rop():
    result, mismatches = validate_traces([_stream_trace()], _validation_config())
    assert mismatches == []
    assert result.stats.sram_hits > 0  # the run actually exercised ROP


def test_clean_run_has_no_mismatches_baseline():
    _, mismatches = validate_traces([_stream_trace()], _validation_config(rop=False))
    assert mismatches == []


# Every golden check, with a skew that must trip it.  The eq3-budget
# failpoint shrinks the modelled SRAM capacity below the real plan sizes,
# so it needs a workload that actually emits PREFETCH_PLAN events — the
# unit-stride stream above is exactly that.
_FAILPOINTS = {
    "ddr-timing": 2,
    "lambda-beta": 0.25,
    "refresh-schedule": 7,
    "sram-model": 3,
    "counters": 2,
    "eq3-budget": 15,
}


@pytest.mark.parametrize("check", sorted(_FAILPOINTS))
def test_failpoint_trips_its_named_check(check, monkeypatch, tmp_path):
    _arm(monkeypatch, tmp_path, {f"golden:{check}": _FAILPOINTS[check]})
    _, mismatches = validate_traces([_stream_trace()], _validation_config())
    assert mismatches, f"skewed {check} golden model produced no mismatch"
    assert {m.check for m in mismatches} == {check}


def test_mismatch_table_renders_every_row():
    mismatches = [
        Mismatch("ddr-timing", "ch0.rank0.bank1", 10, 12, cycle=77, detail="tRCD"),
        Mismatch("stat-band", "entry.ipc", "[0.8, 0.9]", 0.5),
    ]
    table = render_mismatch_table(mismatches)
    assert "ddr-timing" in table and "stat-band" in table
    assert "tRCD" in table and "ch0.rank0.bank1" in table


# ------------------------------------------------------------------ corpus


def test_committed_corpus_loads_and_materializes():
    entries = load_corpus()
    assert len(entries) >= 8
    assert len({e.name for e in entries}) == len(entries)
    for entry in entries:
        cfg = config_for(entry)  # every referenced system must exist
        assert cfg.organization.channels >= 1
        assert entry.expect, f"{entry.name}: corpus entries must band something"


def test_corpus_schema_rejections(tmp_path):
    cases = {
        "empty.yaml": "entries: []",
        "noname.yaml": "entries:\n  - workloads: [lbm]",
        "badband.yaml": (
            "entries:\n  - name: x\n    workloads: [lbm]\n"
            "    expect: {ipc: [0.9, 0.1]}"
        ),
        "dupes.yaml": (
            "entries:\n"
            "  - {name: x, workloads: [lbm]}\n"
            "  - {name: x, workloads: [gcc]}"
        ),
    }
    for fname, text in cases.items():
        p = tmp_path / fname
        p.write_text(text)
        with pytest.raises(ValueError):
            load_corpus(p)


def test_config_for_rejects_bad_entries():
    with pytest.raises(ValueError, match="unknown system"):
        config_for(CorpusEntry(name="x", workloads=("lbm",), system="warp-drive"))
    with pytest.raises(ValueError, match="non-ROP"):
        config_for(
            CorpusEntry(
                name="x", workloads=("lbm",), system="baseline", training_refreshes=3
            )
        )


def test_run_entry_stat_band(monkeypatch, tmp_path):
    entry = CorpusEntry(
        name="tiny",
        workloads=("lbm",),
        system="baseline",
        instructions=50_000,
        expect={"ipc": (0.0, 10.0), "refreshes": (0.0, 1e6)},
    )
    result, mismatches = run_entry(entry)
    assert mismatches == []
    assert 0.0 < stat_value(result, "ipc") < 10.0
    # a skewed band must flag every banded stat as out of range
    _arm(monkeypatch, tmp_path, {"golden:stat-band": 1e7})
    _, mismatches = run_entry(entry)
    assert {m.check for m in mismatches} == {"stat-band"}
    assert {m.site for m in mismatches} == {"tiny.ipc", "tiny.refreshes"}


def test_stat_value_accessors():
    entry = CorpusEntry(
        name="tiny", workloads=("lbm",), instructions=50_000, expect={"ipc": (0, 10)}
    )
    result, _ = run_entry(entry)
    assert stat_value(result, "reads") == float(result.stats.reads)
    assert stat_value(result, "end_cycle") == float(result.stats.end_cycle)
    assert stat_value(result, "sram_hits") == 0.0  # baseline has no SRAM
    with pytest.raises(ValueError, match="unknown corpus statistic"):
        stat_value(result, "bogons")


# ------------------------------------------------------- runner integration


def _tiny_spec(**kw) -> RunSpec:
    cfg = SystemConfig.single_core()
    return RunSpec(
        workloads=("lbm",),
        config=cfg,
        trace_llc=cfg.llc,
        instructions=50_000,
        seed=1,
        **kw,
    )


def test_runspec_validate_excluded_from_cache_key():
    assert _tiny_spec().key == _tiny_spec(validate=True).key


def test_validation_enabled_by_spec_or_env(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    assert not validation_enabled(_tiny_spec())
    assert validation_enabled(_tiny_spec(validate=True))
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    assert validation_enabled(_tiny_spec())


def test_run_spec_validated_clean(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    result = run_spec(_tiny_spec(validate=True))
    assert result.ipc > 0


def test_run_spec_validated_raises_on_mismatch(monkeypatch, tmp_path):
    _arm(monkeypatch, tmp_path, {"golden:counters": 2})
    with pytest.raises(GoldenMismatchError) as info:
        run_spec(_tiny_spec(validate=True))
    exc = info.value
    assert classify_failure(exc) == "invariant"
    assert any(m.check == "counters" for m in exc.mismatches)
    assert "counters" in str(exc)


# --------------------------------------------------------------------- CLI


def test_cli_validate_list(capsys):
    from repro.cli import main

    assert main(["validate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "lbm-baseline" in out


def test_cli_validate_green_entry(capsys):
    from repro.cli import main

    assert main(["validate", "--only", "lbm-baseline"]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "green" in out


def test_cli_validate_unknown_entry():
    from repro.cli import main

    assert main(["validate", "--only", "no-such-entry"]) == 2


def test_cli_validate_failpoint_exits_nonzero(capsys, monkeypatch, tmp_path):
    from repro.cli import main

    _arm(monkeypatch, tmp_path, {"golden:refresh-schedule": 7})
    assert main(["validate", "--only", "lbm-baseline"]) == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    # the stderr table names the broken check
    assert "refresh-schedule" in captured.err
