"""Throttle-probability and SkipReason coverage (Section IV-C).

The probabilistic throttle is a pair of seeded coin flips: with window
occupancy ``B > 0`` ROP prefetches with probability ``λ``; with
``B == 0`` it stays quiet with probability ``β``.  These tests drive the
coin directly and check the empirical go-rates against the configured
probabilities within a binomial tolerance, then exercise the engine end
to end so every :class:`SkipReason` is observed in telemetry with the
cause it claims.
"""

from __future__ import annotations

import math

import pytest

from repro import SystemConfig
from repro.config import RopConfig
from repro.core.prefetcher import Prefetcher
from repro.core.profiler import LambdaBeta
from repro.dram import MemorySystem
from repro.rng import make_rng
from repro.telemetry import Kind, SkipReason, TraceSink

# ------------------------------------------------------------- direct drive

_N = 4000


def _go_rate(b_count: int, lam: float, beta: float, seed: int = 7) -> float:
    pf = Prefetcher(RopConfig(enabled=True), make_rng(seed, "rop-throttle"))
    gos = sum(pf.decide(b_count, LambdaBeta(lam, beta)) for _ in range(_N))
    assert pf.decisions_go + pf.decisions_skip == _N
    assert pf.decisions_go == gos
    return gos / _N


def _tolerance(p: float) -> float:
    # 4σ binomial band plus a small floor; false-failure odds ~1e-4, and
    # the profiles are derandomized in CI so a pass is a pass forever
    return 4.0 * math.sqrt(p * (1.0 - p) / _N) + 0.01


@pytest.mark.parametrize("lam", [0.15, 0.5, 0.85])
def test_busy_window_prefetches_at_rate_lambda(lam):
    rate = _go_rate(b_count=3, lam=lam, beta=0.5)
    assert abs(rate - lam) < _tolerance(lam)


@pytest.mark.parametrize("beta", [0.2, 0.6, 0.9])
def test_empty_window_stays_quiet_at_rate_beta(beta):
    rate = _go_rate(b_count=0, lam=0.5, beta=beta)
    assert abs(rate - (1.0 - beta)) < _tolerance(1.0 - beta)


def test_degenerate_probabilities_are_deterministic():
    assert _go_rate(3, lam=1.0, beta=0.5) == 1.0
    assert _go_rate(3, lam=0.0, beta=0.5) == 0.0
    assert _go_rate(0, lam=0.5, beta=1.0) == 0.0


def test_ablation_bypasses_coin():
    """probabilistic=False: go iff the window saw traffic, no randomness."""
    pf = Prefetcher(
        RopConfig(enabled=True, probabilistic=False), make_rng(1, "rop-throttle")
    )
    assert pf.decide(5, LambdaBeta(0.0, 1.0)) is True
    assert pf.decide(0, LambdaBeta(1.0, 0.0)) is False


def test_unprofiled_rank_stays_quiet():
    pf = Prefetcher(RopConfig(enabled=True), make_rng(1, "rop-throttle"))
    assert all(not pf.decide(b, None) for b in (0, 1, 8))
    assert pf.decisions_go == 0


def test_same_seed_same_decisions():
    lb = LambdaBeta(0.5, 0.5)
    runs = []
    for _ in range(2):
        pf = Prefetcher(RopConfig(enabled=True), make_rng(11, "rop-throttle"))
        runs.append([pf.decide(1, lb) for _ in range(200)])
    assert runs[0] == runs[1]


# ------------------------------------------------------- engine SkipReasons


def _rop_system(**rop_kw):
    base = SystemConfig.single_core()
    timings = base.timings.with_refresh(refi=1200, rfc=100)
    cfg = SystemConfig.single_core(timings=timings)
    return cfg.with_rop(training_refreshes=1, sram_lines=16, **rop_kw)


def _run(cfg, workload):
    # all-category sink: the default recorder sink drops ROP events
    ms = MemorySystem(cfg, record_events=True, sink=TraceSink(1 << 14, policy="grow"))
    cycle = 0
    for line, gap in workload:
        cycle += gap
        ms.schedule_read(line, cycle)
    ms.run()
    ms.finish()
    return ms


def _skip_reasons(ms):
    snap = ms.sink.snapshot()
    mask = snap["kind"] == int(Kind.PREFETCH_SKIP)
    return snap["a"][mask]


_STREAM = [(i, 5) for i in range(800)]  # unit stride, steady 1-in-5 traffic


def test_bus_pressure_skip_observed():
    """A zero pressure budget converts every post-training plan to a skip."""
    ms = _run(_rop_system(bus_pressure_limit=0.0), _STREAM)
    reasons = _skip_reasons(ms)
    assert len(reasons) > 0
    assert (reasons == int(SkipReason.BUS_PRESSURE)).all()
    assert ms.stats.refreshes > 1  # training actually completed


def test_no_candidates_skip_observed():
    """Patternless traffic trains λ/β but leaves the table empty-handed."""
    rng = make_rng(3, "skip-workload")
    workload = [(int(rng.integers(0, 1 << 22)), 5) for _ in range(800)]
    ms = _run(_rop_system(bus_pressure_limit=1.0, probabilistic=False), workload)
    reasons = _skip_reasons(ms)
    assert len(reasons) > 0
    assert int(SkipReason.NO_CANDIDATES) in set(int(r) for r in reasons)


def test_throttle_skip_observed_and_tagged():
    """λ=0, β=1 forces the coin to 'skip'; the event says THROTTLE."""
    ms = _run(_rop_system(bus_pressure_limit=1.0), _STREAM)
    eng = ms.rop
    assert not eng.sm.is_training
    key = (0, 0)
    eng.lam_beta[key] = LambdaBeta(0.0, 1.0)
    before = len(_skip_reasons(ms))
    assert eng.plan_prefetch(0, 0, ms.stats.end_cycle + 50_000) == []
    reasons = _skip_reasons(ms)
    assert len(reasons) == before + 1
    assert int(reasons[-1]) == int(SkipReason.THROTTLE)


def test_skip_reasons_are_always_valid():
    """Every emitted PREFETCH_SKIP carries a defined SkipReason code."""
    valid = {int(r) for r in SkipReason}
    for limit in (0.0, 0.45, 1.0):
        ms = _run(_rop_system(bus_pressure_limit=limit), _STREAM)
        assert all(int(r) in valid for r in _skip_reasons(ms))
