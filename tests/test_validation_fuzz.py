"""Property-based trace fuzzing against the golden models.

Hypothesis generates adversarial memory traces (bursty, refresh-aligned,
bank-conflict-heavy, degenerate) over sampled system configurations and
demands that every run agrees with all of the independent golden models
— DDR timing legality, refresh schedule, λ/β closed form, Eq. 3 budget
bounds, SRAM reference model, counter recounts.  Three metamorphic
properties ride along: determinism, ROP-in-training transparency, and
refresh removal never slowing a run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import RefreshMode
from repro.core.sram_buffer import SramBuffer
from repro.cpu.multicore import run_cores
from repro.validation import validate_traces
from repro.validation.fuzz import config_and_traces

# --------------------------------------------------------- differential fuzz


@given(ct=config_and_traces())
def test_fuzzed_runs_pass_every_golden_check(ct):
    cfg, traces = ct
    _, mismatches = validate_traces(traces, cfg)
    assert mismatches == [], "\n".join(str(m) for m in mismatches)


# ------------------------------------------------------ metamorphic checks


def _fingerprint(result):
    s = result.stats
    return (s.end_cycle, s.reads_completed, s.read_latency_sum, result.ipc)


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_simulation_is_deterministic(ct):
    cfg, traces = ct
    assert _fingerprint(run_cores(traces, cfg)) == _fingerprint(run_cores(traces, cfg))


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_rop_in_permanent_training_is_transparent(ct):
    """An ROP engine that never finishes training (and never drains) only
    observes — cycle-for-cycle identical to the same system without it."""
    cfg, traces = ct
    rop_cfg = cfg.with_rop(training_refreshes=100_000, drain_before_refresh=False)
    assert _fingerprint(run_cores(traces, cfg)) == _fingerprint(
        run_cores(traces, rop_cfg)
    )


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_raidr_all_weak_bins_equal_auto_refresh(ct):
    """RAIDR with every row in the 64 ms bin degenerates to AUTO_1X: the
    binned grid fires on every tick, so the schedules must be identical."""
    cfg, traces = ct
    raidr = cfg.with_refresh_mode(RefreshMode.RAIDR).with_refresh_opts(
        raidr_bins=(1.0, 0.0, 0.0)
    )
    auto = cfg.with_refresh_mode(RefreshMode.AUTO_1X)
    assert _fingerprint(run_cores(traces, raidr)) == _fingerprint(
        run_cores(traces, auto)
    )


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_sarp_single_subarray_equals_per_bank(ct):
    """With one subarray per bank, a subarray lock IS a bank lock, so SARP
    collapses to the per-bank refresh schedule cycle-for-cycle."""
    cfg, traces = ct
    sarp = cfg.with_refresh_mode(RefreshMode.SARP).with_refresh_opts(
        subarrays_per_bank=1
    )
    per_bank = cfg.with_refresh_mode(RefreshMode.PER_BANK)
    assert _fingerprint(run_cores(traces, sarp)) == _fingerprint(
        run_cores(traces, per_bank)
    )


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_darp_zero_postpone_budget_equals_per_bank(ct):
    """A DARP scheduler that may never postpone has no freedom left: it
    must issue the in-order round-robin per-bank schedule."""
    cfg, traces = ct
    darp = cfg.with_refresh_mode(RefreshMode.DARP).with_refresh_opts(postpone_max=0)
    per_bank = cfg.with_refresh_mode(RefreshMode.PER_BANK)
    assert _fingerprint(run_cores(traces, darp)) == _fingerprint(
        run_cores(traces, per_bank)
    )


@given(ct=config_and_traces(rop=False))
@settings(max_examples=15)
def test_removing_refresh_never_slows_a_run(ct):
    """Refresh only ever blocks requests: the idealized no-refresh memory
    finishes no later, modulo scheduler-wakeup jitter.

    The slack term is real, not defensive — two second-order effects let
    a refreshing run finish *earlier* by a little: grid ticks double as
    event-queue wakeups (±O(1) per tick), and each refresh precharges
    every bank, occasionally converting a later row conflict into a
    cheaper closed-row access (≤ tRP + tRCD per bank per refresh).  An
    actual refresh regression costs tRFC-scale lock windows and still
    fails this bound.
    """
    cfg, traces = ct
    with_refresh = run_cores(traces, cfg)
    without = run_cores(traces, cfg.with_refresh_mode(RefreshMode.NONE))
    n = with_refresh.stats.refreshes
    t, org = cfg.effective_timings(), cfg.organization
    slack = 4 * (n + 1) + n * org.banks * (t.rp + t.rcd)
    assert without.stats.end_cycle <= with_refresh.stats.end_cycle + slack


# --------------------------------------------- SRAM buffer unit properties

_LINES = st.integers(0, 40)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("refill"), st.lists(_LINES, max_size=24)),
        st.tuples(st.just("consume"), _LINES),
        st.tuples(st.just("invalidate"), _LINES),
        st.tuples(st.just("flush"), st.none()),
    ),
    max_size=60,
)


def _apply(buf: SramBuffer, op: str, arg) -> None:
    if op == "refill":
        buf.refill((0, 0), arg)
    elif op == "consume":
        buf.consume(arg)
    elif op == "invalidate":
        buf.invalidate(arg)
    else:
        buf.flush()


@given(ops=_OPS, capacity=st.sampled_from([2, 4, 8]))
def test_sram_hits_monotone_in_capacity(ops, capacity):
    """Doubling SRAM capacity never loses a hit on an identical op script.

    Invariant behind it: after every operation the smaller buffer's line
    set is a subset of the larger one's (refill truncation keeps a prefix
    of the distinct fill list; consume/invalidate/flush act pointwise).
    """
    small, big = SramBuffer(capacity), SramBuffer(2 * capacity)
    for op, arg in ops:
        _apply(small, op, arg)
        _apply(big, op, arg)
        assert small.lines <= big.lines
    assert big.hits >= small.hits


@given(ops=_OPS)
def test_sram_never_exceeds_capacity(ops):
    buf = SramBuffer(4)
    for op, arg in ops:
        _apply(buf, op, arg)
        assert len(buf) <= 4
