"""Resilience-layer tests (ISSUE 7).

Covers the degradation ladder (epoch fault → quarantine bundle → scalar
re-run, surfaced in ``RunnerStats.engine_fallbacks``), the quarantine
bundle format round-trip, the size-quota LRU garbage collector and its
live-plan protection, and the ``REPRO_CHAOS`` directive parser with its
once-only marker claims.
"""

import dataclasses
import os
import pickle

import pytest

from repro import SystemConfig
from repro.harness import EngineFallback, RunScale, RunSpec, execute_plan
from repro.harness.cache import ArtifactCache, MISS
from repro.harness.cache_gc import collect, iter_entries, parse_quota, usage, verify
from repro.harness.chaos import (
    CHAOS_SITES,
    ChaosSpec,
    EpochEngineFault,
    chaos_spec,
    fired,
    inject_epoch_fault,
)
from repro.harness.locks import file_lock
from repro.harness.quarantine import (
    bundle_spec,
    list_bundles,
    load_bundle,
    quarantine_dir,
    result_digest,
)
from repro.harness.runner import (
    ConfigError,
    ExecutionPolicy,
    clear_result_memo,
    last_stats,
    run_spec,
)
from repro.workloads.spec_profiles import clear_trace_cache

TINY = RunScale(instructions=60_000, seed=3, training_refreshes=3)


@pytest.fixture(autouse=True)
def cache_env(tmp_path, monkeypatch):
    """Fresh cache dir, cache ON, memos cleared (chaos markers live here)."""
    from repro.harness import set_cache_enabled

    set_cache_enabled(None)
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_trace_cache()
    clear_result_memo()
    yield tmp_path
    clear_trace_cache()
    clear_result_memo()


def policy(**kw) -> ExecutionPolicy:
    return dataclasses.replace(ExecutionPolicy(backoff_s=0.01), **kw)


class TestEngineFaultFallback:
    def test_epoch_fault_reruns_on_scalar_bit_identically(self, monkeypatch):
        spec = RunSpec.benchmark("gobmk", SystemConfig.single_core(), TINY)
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        reference = run_spec(spec)

        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        monkeypatch.setenv("REPRO_CHAOS", "1:1.0:epoch-fault")
        fallbacks = []
        result = run_spec(spec, fallbacks=fallbacks)
        assert result_digest(result) == result_digest(reference)

        assert len(fallbacks) == 1
        fb = fallbacks[0]
        assert isinstance(fb, EngineFallback)
        assert fb.kind == "fault"
        assert fb.key == spec.key
        assert fb.exc_type == "EpochEngineFault"
        assert fb.quarantine  # a bundle was written

    def test_quarantine_bundle_round_trips(self, monkeypatch, tmp_path):
        spec = RunSpec.benchmark("lbm", SystemConfig.single_core(), TINY)
        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        monkeypatch.setenv("REPRO_CHAOS", "1:1.0:epoch-fault")
        fallbacks = []
        result = run_spec(spec, fallbacks=fallbacks)

        bundles = list_bundles()
        assert len(bundles) == 1
        assert bundles[0].parent == quarantine_dir()
        bundle = load_bundle(bundles[0])
        assert bundle["key"] == spec.key
        assert bundle["exc_type"] == "EpochEngineFault"
        assert "EpochEngineFault" in bundle["traceback"]
        assert bundle["workloads"] == ["lbm"]
        # the quarantined spec is reconstructable for offline replay
        replayed = bundle_spec(bundle)
        assert replayed.key == spec.key
        # and the scalar re-run's digest was attached for comparison
        assert bundle["scalar_result_digest"] == result_digest(result)

    def test_fault_counted_in_plan_stats(self, monkeypatch):
        spec = RunSpec.benchmark("bzip2", SystemConfig.single_core(), TINY)
        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        monkeypatch.setenv("REPRO_CHAOS", "1:1.0:epoch-fault")
        results = execute_plan([spec], jobs=1, policy=policy())
        assert results.ok(spec)
        assert last_stats().engine_fallbacks == 1
        assert last_stats().quarantined >= 1
        assert len(results.engine_fallbacks) == 1
        assert results.engine_fallbacks[0].kind == "fault"

    def test_multicore_mix_rides_the_kernel(self, monkeypatch):
        # multiprogrammed mixes used to decline on topology; the
        # generalized kernel now covers them — zero fallback records
        spec = RunSpec.mix("WL1", SystemConfig(), TINY)
        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        results = execute_plan([spec], jobs=1, policy=policy())
        assert results.ok(spec)
        assert last_stats().engine_fallbacks == 0
        assert last_stats().quarantined == 0
        assert len(results.engine_fallbacks) == 0

    def test_declined_audit_recorded_not_counted(self, monkeypatch):
        # audit wraps controller.submit, which the kernel bypasses: a
        # routine decline, recorded for observability but never counted
        # as a fault or quarantined
        spec = RunSpec.benchmark("lbm", SystemConfig.single_core(), TINY)
        monkeypatch.setenv("REPRO_ENGINE", "epoch")
        results = execute_plan([spec], jobs=1, policy=policy(audit=True))
        assert results.ok(spec)
        assert last_stats().engine_fallbacks == 0
        assert last_stats().quarantined == 0
        assert len(results.engine_fallbacks) == 1
        fb = results.engine_fallbacks[0]
        assert fb.kind == "declined"
        assert "audit" in fb.reason
        assert fb.quarantine == ""


class TestChaosDirective:
    def test_parse_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "7:0.25")
        spec = chaos_spec()
        assert spec == ChaosSpec(seed=7, rate=0.25, sites=frozenset(CHAOS_SITES))

    def test_parse_site_subset(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "7:1.0:epoch-fault,slow-spec")
        assert chaos_spec().sites == frozenset({"epoch-fault", "slow-spec"})

    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_spec() is None

    @pytest.mark.parametrize("raw", ["nope", "7", "7:2.0", "x:0.5", "7:0.5:bogus-site"])
    def test_malformed_raises_config_error(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CHAOS", raw)
        with pytest.raises(ConfigError):
            chaos_spec()

    def test_each_site_key_fires_at_most_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "9:1.0:epoch-fault")
        with pytest.raises(EpochEngineFault):
            inject_epoch_fault("somekey")
        # the marker claim makes the retry run clean
        inject_epoch_fault("somekey")
        assert fired(9) == {"epoch-fault": 1}

    def test_deterministic_at_rate_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "9:0.0")
        inject_epoch_fault("anykey")  # never fires
        assert fired(9) == {}


class TestFileLock:
    def test_lock_acquired_and_released(self, tmp_path):
        lock = tmp_path / "x.lock"
        with file_lock(lock) as held:
            assert held
        # reacquirable after release
        with file_lock(lock) as held:
            assert held

    def test_degrades_to_unlocked_on_unwritable_dir(self, tmp_path):
        with file_lock(tmp_path / "no-such-dir" / "x.lock", timeout_s=0.1) as held:
            assert not held  # degraded, but the context still runs


class TestQuotaParsing:
    @pytest.mark.parametrize("raw,expect", [
        ("1024", 1024),
        ("1K", 1 << 10),
        ("500M", 500 << 20),
        ("2G", 2 << 30),
        ("1.5K", 1536),
        ("512kb", 512 << 10),
        (4096, 4096),
    ])
    def test_accepted_forms(self, raw, expect):
        assert parse_quota(raw) == expect

    @pytest.mark.parametrize("raw", ["", "lots", "-5", "0", "1Q"])
    def test_rejected_forms(self, raw):
        with pytest.raises(ConfigError):
            parse_quota(raw)


def _seed_entries(root, n, *, base_mtime=1_000_000_000):
    """``n`` result pickles with strictly increasing mtimes; returns keys."""
    cache = ArtifactCache(root)
    keys = []
    for i in range(n):
        key = f"{i:02x}" + "e" * 38
        cache.put(key, list(range(100)))
        mtime = base_mtime + i * 100
        os.utime(cache._path(key), (mtime, mtime))
        keys.append(key)
    return keys


class TestGarbageCollection:
    def test_lru_evicts_oldest_first(self, tmp_path):
        keys = _seed_entries(tmp_path, 4)
        sizes = {e.key: e.bytes for e in iter_entries(tmp_path)}
        quota = sizes[keys[2]] + sizes[keys[3]]  # room for the newest two
        res = collect(quota, root=tmp_path)
        assert res.evicted_keys == [keys[0], keys[1]]
        assert res.bytes_after <= quota
        cache = ArtifactCache(tmp_path)
        assert cache.get(keys[0], MISS) is MISS
        assert cache.get(keys[3], MISS) is not MISS

    def test_read_hit_touches_lru_rank(self, tmp_path):
        keys = _seed_entries(tmp_path, 2)
        cache = ArtifactCache(tmp_path)
        assert cache.get(keys[0]) is not None  # promote the older entry
        one = next(e.bytes for e in iter_entries(tmp_path) if e.key == keys[0])
        res = collect(one, root=tmp_path)
        # the un-touched (now coldest) entry went first
        assert keys[1] in res.evicted_keys
        assert keys[0] not in res.evicted_keys

    def test_protected_keys_survive_even_over_quota(self, tmp_path):
        keys = _seed_entries(tmp_path, 3)
        res = collect(1, root=tmp_path, protect={keys[1]})
        assert keys[1] not in res.evicted_keys
        assert res.protected == 1
        assert ArtifactCache(tmp_path).get(keys[1], MISS) is not MISS

    def test_dry_run_deletes_nothing(self, tmp_path):
        keys = _seed_entries(tmp_path, 3)
        res = collect(1, root=tmp_path, dry_run=True)
        assert res.dry_run and res.evicted == 3
        assert len(iter_entries(tmp_path)) == 3
        assert ArtifactCache(tmp_path).get(keys[0], MISS) is not MISS

    def test_quarantine_and_locks_never_collected(self, tmp_path):
        _seed_entries(tmp_path, 1)
        (tmp_path / "quarantine").mkdir()
        (tmp_path / "quarantine" / "evidence.quar").write_bytes(b"x" * 4096)
        lock = tmp_path / "00" / "stale.lock"
        lock.write_bytes(b"")
        collect(1, root=tmp_path)
        assert (tmp_path / "quarantine" / "evidence.quar").exists()
        assert lock.exists()

    def test_usage_and_verify_heal_corruption(self, tmp_path):
        keys = _seed_entries(tmp_path, 2)
        cache = ArtifactCache(tmp_path)
        cache._path(keys[0]).write_bytes(pickle.dumps([1])[:4])  # torn
        u = usage(tmp_path)
        assert u["entries"] == 2
        rep = verify(tmp_path)
        assert rep["checked"] == 2
        assert rep["corrupt"] == 1
        assert rep["bad"] == [f"result:{keys[0]}"]
        # the torn entry was quarantined by the read path, not left behind
        assert not cache._path(keys[0]).exists()
        assert usage(tmp_path)["quarantined"] == 1

    def test_end_of_plan_auto_gc_protects_live_plan(self, tmp_path, monkeypatch):
        cold = _seed_entries(tmp_path, 3)
        monkeypatch.setenv("REPRO_CACHE_QUOTA", "1")
        spec = RunSpec.benchmark("gobmk", SystemConfig.single_core(), TINY)
        results = execute_plan([spec], jobs=1, policy=policy())
        assert results.ok(spec)
        assert last_stats().cache_evictions == 3
        cache = ArtifactCache(tmp_path)
        for key in cold:
            assert cache.get(key, MISS) is MISS
        # the plan's own result and trace artifacts survived the 1-byte quota
        assert cache.get(spec.key, MISS) is not MISS
        kinds = {e.kind for e in iter_entries(tmp_path)}
        assert kinds == {"result", "trace"}
