"""Tests for the parallel experiment runner (harness/runner.py).

Covers the ISSUE-1 acceptance semantics at a sub-smoke scale so the
whole file stays fast: parallel-vs-sequential equivalence, spec
deduplication, cache hit/miss/invalidation, corrupted-entry recovery and
the REPRO_JOBS resolution rules.
"""

import json

import pytest

from repro import RefreshMode, SystemConfig
from repro.harness import (
    RunPlan,
    RunScale,
    RunSpec,
    alone_ipc,
    execute_plan,
    fig7_8_9_rop_comparison,
    last_stats,
    resolve_jobs,
    run_mix,
)
from repro.harness.cache import ArtifactCache, NullCache
from repro.harness.runner import clear_result_memo
from repro.workloads.spec_profiles import clear_trace_cache

#: deliberately smaller than the smoke scale: this file runs many plans
TINY = RunScale(instructions=120_000, seed=3, training_refreshes=3)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_result_memo()
    yield
    clear_result_memo()


class TestRunSpec:
    def test_key_is_stable_and_content_addressed(self):
        cfg = SystemConfig.single_core()
        a = RunSpec.benchmark("lbm", cfg, TINY)
        b = RunSpec.benchmark("lbm", SystemConfig.single_core(), TINY)
        assert a.key == b.key

    def test_key_covers_config(self):
        cfg = SystemConfig.single_core()
        base = RunSpec.benchmark("lbm", cfg, TINY)
        assert base.key != RunSpec.benchmark("lbm", cfg.with_rop(), TINY).key
        assert base.key != RunSpec.benchmark("gobmk", cfg, TINY).key
        assert (
            base.key
            != RunSpec.benchmark("lbm", cfg, RunScale(120_000, seed=4)).key
        )
        assert base.key != RunSpec.benchmark("lbm", cfg, TINY, record_events=True).key

    def test_alone_spec_disables_rop(self):
        cfg = SystemConfig.quad_core().with_rop()
        spec = RunSpec.alone("gobmk", cfg.llc, TINY, cfg)
        assert not spec.config.rop.enabled
        # two systems differing only in ROP share the same alone spec
        rp = SystemConfig.quad_core()
        assert spec.key == RunSpec.alone("gobmk", cfg.llc, TINY, rp).key

    def test_alone_spec_distinguishes_memory_config(self):
        # the ISSUE-1 satellite fix: alone IPC keys must cover the full
        # memory configuration, not just (benchmark, LLC, scale)
        shared = SystemConfig.quad_core(rank_partitioned=False)
        partitioned = SystemConfig.quad_core(rank_partitioned=True)
        a = RunSpec.alone("gobmk", shared.llc, TINY, shared)
        b = RunSpec.alone("gobmk", partitioned.llc, TINY, partitioned)
        assert a.key != b.key

    def test_mix_spec_share(self):
        cfg = SystemConfig.quad_core()
        spec = RunSpec.mix("WL6", cfg, TINY)
        assert len(spec.workloads) == 4
        assert spec.trace_llc.size_bytes == cfg.llc.size_bytes // 4


class TestExecutePlan:
    def test_dedup_identical_specs(self):
        cfg = SystemConfig.single_core()
        spec = RunSpec.benchmark("gobmk", cfg, TINY)
        plan = RunPlan()
        plan.add(spec)
        plan.add(RunSpec.benchmark("gobmk", cfg, TINY))
        results = plan.execute(jobs=1, cache=NullCache())
        stats = results.stats
        assert stats.requested == 2
        assert stats.unique == 1
        assert stats.executed == 1

    def test_memo_hit_on_second_plan(self):
        cfg = SystemConfig.single_core()
        spec = RunSpec.benchmark("gobmk", cfg, TINY)
        execute_plan([spec], jobs=1, cache=NullCache())
        execute_plan([spec], jobs=1, cache=NullCache())
        assert last_stats().memo_hits == 1
        assert last_stats().executed == 0

    def test_parallel_equals_sequential(self):
        """Same plan, jobs=1 vs jobs=2 → identical results."""
        cfg = SystemConfig.single_core()
        rows_seq = fig7_8_9_rop_comparison(("gobmk",), TINY, cfg, sram_sizes=(16,), jobs=1)
        clear_result_memo()
        rows_par = fig7_8_9_rop_comparison(("gobmk",), TINY, cfg, sram_sizes=(16,), jobs=2)
        assert last_stats().jobs == 2
        assert json.dumps(rows_seq, sort_keys=True) == json.dumps(rows_par, sort_keys=True)

    def test_parallel_multicore_result_fields(self):
        cfg = SystemConfig.single_core()
        specs = [
            RunSpec.benchmark("gobmk", cfg, TINY),
            RunSpec.benchmark("gobmk", cfg.with_rop(training_refreshes=3), TINY),
        ]
        seq = execute_plan(specs, jobs=1, cache=NullCache())
        seq_results = [seq[s] for s in specs]
        clear_result_memo()
        par = execute_plan(specs, jobs=2, cache=NullCache())
        for spec, expect in zip(specs, seq_results):
            got = par[spec]
            assert got.cores == expect.cores
            assert got.stats == expect.stats
            assert got.rop_summary == expect.rop_summary
            assert got.end_cycle == expect.end_cycle

    def test_cache_hit_and_invalidate_on_config_change(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cfg = SystemConfig.single_core()
        spec = RunSpec.benchmark("gobmk", cfg, TINY)
        execute_plan([spec], jobs=1, cache=cache)
        assert last_stats().executed == 1
        clear_result_memo()
        execute_plan([spec], jobs=1, cache=cache)
        assert last_stats().cache_hits == 1
        assert last_stats().executed == 0
        # a config change produces a different key → cache miss, re-run
        clear_result_memo()
        changed = RunSpec.benchmark("gobmk", cfg.with_rop(sram_lines=32), TINY)
        execute_plan([changed], jobs=1, cache=cache)
        assert last_stats().cache_hits == 0
        assert last_stats().executed == 1

    def test_corrupted_cache_entry_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cfg = SystemConfig.single_core()
        spec = RunSpec.benchmark("gobmk", cfg, TINY)
        expect = execute_plan([spec], jobs=1, cache=cache)[spec]
        cache._path(spec.key).write_bytes(b"not a pickle at all")
        clear_result_memo()
        got = execute_plan([spec], jobs=1, cache=cache)[spec]
        assert last_stats().executed == 1  # recomputed, no crash
        assert got.cores == expect.cores
        assert got.stats == expect.stats
        # and the entry was repaired
        clear_result_memo()
        execute_plan([spec], jobs=1, cache=cache)
        assert last_stats().cache_hits == 1

    def test_results_survive_trace_cache_clear(self, tmp_path):
        """Artifacts persist across 'processes' (simulated by memo clears)."""
        cache = ArtifactCache(tmp_path)
        cfg = SystemConfig.quad_core()
        r1 = run_mix("WL6", cfg, TINY, jobs=1)
        clear_result_memo()
        clear_trace_cache()
        # second invocation: all five runs (mix + 4 alone) from disk
        get_cache_hits_before = last_stats().cache_hits
        r2 = run_mix("WL6", cfg, TINY, jobs=1)
        assert r1.weighted_speedup == r2.weighted_speedup
        assert r1.result.cores == r2.result.cores


class TestAloneIpc:
    def test_different_configs_do_not_share(self):
        """Regression for the alone_ipc memo-key bug: two systems with
        different memory configurations must not share a cached IPC — the
        old key was (benchmark, LLC, scale) only, so the second call below
        used to be a (wrong) memo hit."""
        shared = SystemConfig.quad_core(rank_partitioned=False)
        partitioned = SystemConfig.quad_core(rank_partitioned=True)
        a = alone_ipc("lbm", shared.llc, TINY, shared)
        assert last_stats().executed == 1
        b = alone_ipc("lbm", partitioned.llc, TINY, partitioned)
        assert last_stats().executed == 1  # simulated anew, not shared
        assert a > 0 and b > 0
        # and a genuinely different memory (no refresh) yields a different IPC
        c = alone_ipc("lbm", shared.llc, TINY, shared.with_refresh_mode(RefreshMode.NONE))
        assert last_stats().executed == 1
        assert c != a

    def test_memoized(self):
        cfg = SystemConfig.quad_core()
        a = alone_ipc("gobmk", cfg.llc, TINY, cfg)
        executed_first = last_stats().executed
        b = alone_ipc("gobmk", cfg.llc, TINY, cfg)
        assert a == b
        assert executed_first == 1
        assert last_stats().executed == 0


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_jobs() == 1

    def test_auto_and_zero(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestReporting:
    def test_render_runner_stats(self):
        from repro.harness import reporting

        cfg = SystemConfig.single_core()
        execute_plan([RunSpec.benchmark("gobmk", cfg, TINY)], jobs=1, cache=NullCache())
        out = reporting.render_runner_stats(last_stats())
        assert "runner:" in out
        assert "jobs=1" in out
        assert "wall" in out
