#!/usr/bin/env python3
"""Run the full paper-scale experiment set and emit EXPERIMENTS.md content.

This is the script that produced EXPERIMENTS.md: every table and figure
driver at the `paper` scale, rendered as markdown-ish text blocks with the
paper's reported values alongside.

Usage:  python scripts/run_experiments.py [out.md] [--scale paper]
"""

import sys
import time

from repro.harness import (
    DEFAULT_BENCHMARKS,
    RunScale,
    fig1_refresh_overheads,
    fig2_to_4_and_table1,
    fig7_8_9_rop_comparison,
    fig10_11_weighted_speedup,
    fig12_13_14_llc_sensitivity,
    reporting,
)
from repro.stats.metrics import geomean
from repro.workloads import WORKLOAD_MIXES, profile


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS_RAW.md"
    scale_name = "paper"
    if "--scale" in sys.argv:
        scale_name = sys.argv[sys.argv.index("--scale") + 1]
    scale = RunScale.named(scale_name)
    mix_scale = RunScale(
        instructions=scale.instructions // 3,
        seed=scale.seed,
        training_refreshes=max(10, scale.training_refreshes // 2),
    )
    lines: list[str] = [
        f"# Raw experiment output (scale={scale_name}, "
        f"{scale.instructions} instructions single-core, "
        f"{mix_scale.instructions} per core multi-core)",
        "",
    ]

    def block(title: str, text: str) -> None:
        print(f"\n===== {title} =====\n{text}", flush=True)
        lines.append(f"## {title}\n\n```\n{text}\n```\n")

    t0 = time.time()

    rows1 = fig1_refresh_overheads(DEFAULT_BENCHMARKS, scale)
    block("FIG1 refresh overheads (perf + energy)", reporting.render_fig1(rows1))

    rows234 = fig2_to_4_and_table1(DEFAULT_BENCHMARKS, scale)
    block("TAB1 lambda/beta", reporting.render_table1(rows234))
    block("FIG2 non-blocking refreshes", reporting.render_fig2(rows234))
    block("FIG3 blocked per blocking refresh", reporting.render_fig3(rows234))
    block("FIG4 dominant events", reporting.render_fig4(rows234))

    rows789 = fig7_8_9_rop_comparison(
        DEFAULT_BENCHMARKS, scale, sram_sizes=(16, 32, 64, 128)
    )
    block("FIG7/8/9 single-core ROP", reporting.render_fig7_8_9(rows789))
    gains = [r["rop"][64]["norm_ipc"] for r in rows789]
    lines.append(
        f"ROP-64 normalized IPC geomean: {geomean(gains):.4f}; "
        f"max gain {max(gains):.4f}\n"
    )

    mixes = tuple(WORKLOAD_MIXES)
    rows1011 = fig10_11_weighted_speedup(mixes, mix_scale)
    block("FIG10/11 multi-programmed", reporting.render_fig10_11(rows1011))

    rows121314 = fig12_13_14_llc_sensitivity(
        mixes, mix_scale, llc_sweep=tuple(m << 20 for m in (1, 2, 4, 8))
    )
    block(
        "FIG12 weighted speedup vs LLC (ROP/Baseline)",
        reporting.render_llc_sensitivity(rows121314, "norm_ws"),
    )
    block(
        "FIG13 energy vs LLC (ROP/Baseline)",
        reporting.render_llc_sensitivity(rows121314, "norm_energy"),
    )
    block(
        "FIG14 armed hit rate vs LLC",
        reporting.render_llc_sensitivity(rows121314, "rop_armed_hit_rate"),
    )

    lines.append(f"_Total wall time: {time.time() - t0:.0f}s_\n")
    with open(out_path, "w") as fh:
        fh.write("\n".join(lines))
    print(f"\nwrote {out_path} in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
