#!/usr/bin/env python
"""Load soak: hammer a warm `repro serve` instance with concurrent clients.

The serving claim this script enforces (CI job ``service-smoke``): after
one cold fill, a K-client storm of result fetches and idempotent plan
resubmissions completes with **zero errors** and a **100% cache
hit-rate**, and every result fetched over HTTP is **byte-identical**
(same pickle digest) to an in-process ``repro``-CLI-equivalent run of
the same spec in a fresh cache dir.  Warm-hit latency percentiles
(p50/p95/p99) and throughput land in ``BENCH_service.json``.

Phases:

1. *boot* — spawn ``python -m repro serve --port 0`` on a fresh cache
   dir (skipped when ``--url`` points at a running server);
2. *cold fill* — POST the corpus plan, poll ``/plans/{id}`` to
   completion, assert zero failures;
3. *digest cross-check* — simulate the same specs in-process against a
   *different* fresh cache dir and compare digests against
   ``GET /results/{fingerprint}``;
4. *soak* — K threads × M requests each (result fetches, job polls,
   idempotent plan re-POSTs), all required to return 200/304 with
   ``X-Cache: hit`` where the header applies.

Usage::

    PYTHONPATH=src python scripts/load_soak.py --clients 8 --requests 25
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def build_plan(instructions: int, seed: int) -> dict:
    """The warm corpus: every benchmark × {baseline, rop}."""
    from repro.workloads import SPEC_PROFILES

    specs = []
    for name in SPEC_PROFILES:
        specs.append(
            {
                "workloads": [name],
                "system": "baseline",
                "instructions": instructions,
                "seed": seed,
            }
        )
        specs.append(
            {
                "workloads": [name],
                "system": "rop",
                "instructions": instructions,
                "seed": seed,
                "training_refreshes": 3,
            }
        )
    return {"specs": specs}


class Client:
    """One keep-alive HTTP connection with JSON helpers."""

    def __init__(self, host: str, port: int) -> None:
        self.conn = http.client.HTTPConnection(host, port, timeout=120)

    def request(self, method: str, path: str, body: dict | None = None,
                headers: dict | None = None):
        payload = json.dumps(body) if body is not None else None
        self.conn.request(method, path, body=payload, headers=headers or {})
        resp = self.conn.getresponse()
        data = resp.read()
        doc = json.loads(data) if data else None
        return resp.status, dict(resp.getheaders()), doc


def boot_server(cache_dir: Path, jobs: int) -> tuple[subprocess.Popen, int]:
    """Spawn ``repro serve`` on an ephemeral port; returns (proc, port)."""
    env = dict(os.environ)
    env.update(
        PYTHONPATH=str(ROOT / "src"),
        REPRO_CACHE="on",
        REPRO_CACHE_DIR=str(cache_dir),
        PYTHONUNBUFFERED="1",
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(jobs)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        m = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if m:
            return proc, int(m.group(1))
    proc.kill()
    raise RuntimeError("repro serve never reported its port")


def wait_for_job(client: Client, job_id: str, timeout_s: float = 600) -> dict:
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        status, _, doc = client.request("GET", f"/plans/{job_id}")
        if status != 200:
            raise RuntimeError(f"GET /plans/{job_id} -> {status}: {doc}")
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.25)
    raise RuntimeError(f"job {job_id} did not finish within {timeout_s}s")


def local_digests(plan: dict, cache_dir: Path) -> dict[str, str]:
    """Digests of the same specs simulated in-process (the CLI path)."""
    os.environ["REPRO_CACHE"] = "on"
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    from repro.harness import execute_plan, spec_fingerprint
    from repro.harness.quarantine import result_digest
    from repro.service import spec_from_descriptor

    specs = [spec_from_descriptor(d, i) for i, d in enumerate(plan["specs"])]
    results = execute_plan(specs, jobs=1)
    return {spec_fingerprint(s): result_digest(results[s]) for s in specs}


def percentile(sorted_ms: list[float], p: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, max(0, round(p / 100 * (len(sorted_ms) - 1))))
    return sorted_ms[idx]


def soak(host: str, port: int, plan: dict, job_id: str,
         fingerprints: list[str], clients: int, requests: int):
    """K concurrent clients; returns (latencies_ms, errors, hits, checked)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    hits = [0] * clients
    checked = [0] * clients
    barrier = threading.Barrier(clients)

    def worker(cid: int) -> None:
        client = Client(host, port)
        barrier.wait()
        for i in range(requests):
            fp = fingerprints[(cid + i) % len(fingerprints)]
            if i % 7 == 3:
                kind, method, path, body = "poll", "GET", f"/plans/{job_id}", None
            elif i % 5 == 2:
                kind, method, path, body = "resubmit", "POST", "/plans", plan
            else:
                kind, method, path, body = "result", "GET", f"/results/{fp}", None
            t0 = time.perf_counter()
            try:
                status, headers, doc = client.request(method, path, body)
            except Exception as exc:
                errors.append(f"client {cid} req {i} {kind}: {exc}")
                client = Client(host, port)  # reconnect, keep soaking
                continue
            latencies[cid].append((time.perf_counter() - t0) * 1e3)
            if status not in (200, 304):
                errors.append(
                    f"client {cid} req {i} {kind}: HTTP {status}: {doc}"
                )
                continue
            if kind in ("result", "resubmit"):
                checked[cid] += 1
                if headers.get("X-Cache") == "hit":
                    hits[cid] += 1
                else:
                    errors.append(
                        f"client {cid} req {i} {kind}: X-Cache "
                        f"{headers.get('X-Cache')!r} (expected hit)"
                    )

    threads = [
        threading.Thread(target=worker, args=(c,), daemon=True)
        for c in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    flat = sorted(ms for per in latencies for ms in per)
    return flat, errors, sum(hits), sum(checked), wall


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--url", default=None,
                    help="soak an already-running server (host:port) instead "
                         "of booting one")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--requests", type=int, default=25,
                    help="requests per client")
    ap.add_argument("--jobs", type=int, default=2,
                    help="server worker fleet for the cold fill")
    ap.add_argument("--instructions", type=int, default=120_000)
    ap.add_argument("--seed", type=int, default=5)
    ap.add_argument("--out", default="BENCH_service.json")
    ap.add_argument("--skip-digest-check", action="store_true",
                    help="skip the in-process digest cross-check "
                         "(saves one serial corpus simulation)")
    args = ap.parse_args()
    assert args.clients >= 1

    plan = build_plan(args.instructions, args.seed)
    print(f"load soak: {len(plan['specs'])} specs, {args.clients} clients × "
          f"{args.requests} requests")

    ok = True
    proc = None
    bench: dict = {
        "schema": 1,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "plan_specs": len(plan["specs"]),
        "instructions": args.instructions,
    }
    with tempfile.TemporaryDirectory(prefix="soak-svc-") as tmp:
        try:
            if args.url:
                host, _, port = args.url.rpartition(":")
                host = host.replace("http://", "").strip("/") or "127.0.0.1"
                port = int(port)
            else:
                proc, port = boot_server(Path(tmp) / "server-cache", args.jobs)
                host = "127.0.0.1"
            client = Client(host, port)

            # phase 2: cold fill
            t0 = time.perf_counter()
            status, _, doc = client.request("POST", "/plans", plan)
            if status not in (200, 202):
                print(f"FAIL: POST /plans -> {status}: {doc}")
                return 1
            job = wait_for_job(client, doc["id"])
            cold_s = time.perf_counter() - t0
            bench["cold_fill_s"] = round(cold_s, 3)
            fingerprints = sorted({s["fingerprint"] for s in job["specs"]})
            print(f"cold fill: {job['state']} in {cold_s:.1f}s "
                  f"({len(fingerprints)} unique specs, "
                  f"executed {job['stats'].get('executed')})")
            if job["state"] != "done" or job["failures"]:
                print(f"FAIL: cold fill state={job['state']} "
                      f"failures={job['failures']}")
                return 1

            # phase 3: digest cross-check vs an in-process jobs=1 run
            if not args.skip_digest_check:
                expected = local_digests(plan, Path(tmp) / "local-cache")
                mismatched = missing = 0
                for fp in fingerprints:
                    status, headers, doc = client.request(
                        "GET", f"/results/{fp}"
                    )
                    if status != 200:
                        missing += 1
                        continue
                    if doc["digest"] != expected[fp]:
                        mismatched += 1
                bench["digests_checked"] = len(fingerprints)
                bench["digest_mismatches"] = mismatched
                if mismatched or missing:
                    ok = False
                    print(f"FAIL: digest cross-check: {mismatched} mismatched, "
                          f"{missing} missing of {len(fingerprints)}")
                else:
                    print(f"OK  all {len(fingerprints)} service digests match "
                          f"the in-process run")

            # phase 4: the storm
            lat, errors, hit, checked, wall = soak(
                host, port, plan, job["id"], fingerprints,
                args.clients, args.requests,
            )
            hit_rate = hit / checked if checked else 0.0
            bench.update(
                total_requests=len(lat),
                errors=len(errors),
                cache_checked=checked,
                cache_hits=hit,
                hit_rate=round(hit_rate, 4),
                soak_wall_s=round(wall, 3),
                throughput_rps=round(len(lat) / wall, 1) if wall else 0.0,
                p50_ms=round(percentile(lat, 50), 3),
                p95_ms=round(percentile(lat, 95), 3),
                p99_ms=round(percentile(lat, 99), 3),
            )
            print(f"soak: {len(lat)} requests in {wall:.1f}s "
                  f"({bench['throughput_rps']} req/s), "
                  f"p50 {bench['p50_ms']}ms p95 {bench['p95_ms']}ms "
                  f"p99 {bench['p99_ms']}ms")
            print(f"      hit-rate {hit_rate:.1%} ({hit}/{checked}), "
                  f"{len(errors)} errors")
            for err in errors[:5]:
                print(f"  ERR {err}")
            if errors or hit_rate < 1.0:
                ok = False
        finally:
            if proc is not None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()

    bench["pass"] = ok
    Path(args.out).write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print("load soak: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
