#!/usr/bin/env python
"""Chaos soak: a multi-wave plan under ``REPRO_CHAOS`` must finish clean.

The resilience claim this script enforces (CI job ``chaos-soak``): with
every chaos site armed — worker crashes, cache write failures, torn
trace-plane artifacts, injected epoch-engine faults, near-timeout slow
specs — a ≥48-spec plan still completes with **zero failed specs** and
per-spec result digests **bit-identical** to a fault-free run of the
same plan.  Chaos decisions are deterministic in the seed, so a red
soak replays exactly with the same command line.

Phases:

1. *fault-free* — the full plan on the epoch engine in a fresh cache
   dir; records every spec's result digest;
2. *chaos* — the same plan in another fresh cache dir with
   ``REPRO_CHAOS=<seed>:<rate>`` armed, dispatched in two waves (wave 2
   resumes over wave 1's surviving cache) plus a final full-plan pass
   that must be served entirely from cache;
3. *compare* — digests per spec key, failure counts, and the fallback
   ledger (an injected epoch fault must appear in
   ``RunnerStats.engine_fallbacks`` and leave a loadable quarantine
   bundle).

Usage::

    PYTHONPATH=src python scripts/chaos_soak.py --jobs 2
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def build_plan(instructions: int, seeds: tuple[int, ...]):
    from repro import SystemConfig
    from repro.harness import RunScale, RunSpec
    from repro.workloads import SPEC_PROFILES

    base = SystemConfig.single_core()
    rop = base.with_rop(training_refreshes=3)
    specs = []
    for name in SPEC_PROFILES:
        for seed in seeds:
            scale = RunScale(instructions=instructions, seed=seed, training_refreshes=3)
            specs.append(RunSpec.benchmark(name, base, scale))
            specs.append(RunSpec.benchmark(name, rop, scale))
    return specs


def run_phase(specs, cache_dir: Path, jobs: int, chaos: str | None, waves: int):
    """Execute ``specs`` against ``cache_dir``; returns (digests, stats list)."""
    from repro.harness import ExecutionPolicy
    from repro.harness.quarantine import result_digest
    from repro.harness.runner import clear_result_memo, execute_plan, last_stats
    from repro.workloads.spec_profiles import clear_trace_cache

    os.environ["REPRO_CACHE"] = "on"
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    os.environ["REPRO_ENGINE"] = "epoch"
    if chaos:
        os.environ["REPRO_CHAOS"] = chaos
    else:
        os.environ.pop("REPRO_CHAOS", None)
    # force the disk/plan path: both in-process memos (results + traces)
    # would otherwise mask this phase's store traffic from chaos
    clear_result_memo()
    clear_trace_cache()

    # max_attempts=8: every pool break charges an attempt to each in-flight
    # casualty, so a storm of injected worker crashes can cost an innocent
    # spec several attempts; the soak sizes the budget for the storm
    policy = ExecutionPolicy(keep_going=True, backoff_s=0.01, max_attempts=8)
    digests: dict[str, str] = {}
    failures = []
    stats_list = []
    per_wave = (len(specs) + waves - 1) // waves
    for w in range(waves):
        wave = specs[w * per_wave:(w + 1) * per_wave]
        if not wave:
            continue
        results = execute_plan(wave, jobs=jobs, policy=policy)
        failures.extend(results.failures)
        stats_list.append(last_stats())
        for spec in wave:
            res = results.get(spec)
            if res is not None:
                digests[spec.key] = result_digest(res)
    # final pass over the whole plan: every spec must now be a cache hit
    clear_result_memo()
    results = execute_plan(specs, jobs=jobs, policy=policy)
    failures.extend(results.failures)
    stats_list.append(last_stats())
    replay = last_stats()
    if replay.executed:
        # cache-write chaos drops a result from disk (it survives the wave
        # in memory); the replay pass re-simulates exactly those specs —
        # their markers are claimed, so this pass runs fault-free
        print(f"  replay pass re-simulated {replay.executed} specs "
              f"(results lost to injected cache-write failures)")
    return digests, failures, stats_list


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=11, help="chaos seed")
    ap.add_argument("--rate", type=float, default=0.35,
                    help="per-(site,key) firing probability")
    ap.add_argument("--instructions", type=int, default=120_000)
    ap.add_argument("--waves", type=int, default=2)
    args = ap.parse_args()

    specs = build_plan(args.instructions, seeds=(3, 4))
    n_unique = len({s.key for s in specs})
    print(f"chaos soak: {len(specs)} specs ({n_unique} unique), "
          f"jobs={args.jobs}, chaos seed={args.seed} rate={args.rate}")
    assert n_unique >= 48, f"soak plan too small: {n_unique} unique specs"

    ok = True
    with tempfile.TemporaryDirectory(prefix="soak-") as tmp:
        t0 = time.perf_counter()
        clean, clean_failures, _ = run_phase(
            specs, Path(tmp) / "clean", args.jobs, chaos=None, waves=1
        )
        print(f"fault-free: {len(clean)} results in "
              f"{time.perf_counter() - t0:.1f}s, "
              f"{len(clean_failures)} failures")

        t1 = time.perf_counter()
        chaos_dir = Path(tmp) / "chaos"
        chaotic, chaos_failures, stats_list = run_phase(
            specs, chaos_dir, args.jobs,
            chaos=f"{args.seed}:{args.rate}", waves=args.waves,
        )
        from repro.harness.chaos import fired
        from repro.harness.quarantine import list_bundles, load_bundle

        counts = fired(args.seed)
        total_fallbacks = sum(s.engine_fallbacks for s in stats_list)
        total_rebuilds = sum(s.pool_rebuilds for s in stats_list)
        total_quarantined = sum(s.quarantined for s in stats_list)
        print(f"chaos:      {len(chaotic)} results in "
              f"{time.perf_counter() - t1:.1f}s, "
              f"{len(chaos_failures)} failures")
        print(f"  fired: " + (", ".join(
            f"{site}={n}" for site, n in sorted(counts.items())) or "(nothing)"))
        print(f"  absorbed: {total_fallbacks} engine fallbacks, "
              f"{total_rebuilds} pool rebuilds, "
              f"{total_quarantined} quarantined")

        if clean_failures or chaos_failures:
            ok = False
            for f in clean_failures + chaos_failures:
                print(f"FAIL spec {f.key[:12]} [{f.kind}] {f.exc_type}: "
                      f"{f.message}")

        missing = sorted(set(clean) - set(chaotic))
        mismatched = sorted(
            k for k in set(clean) & set(chaotic) if clean[k] != chaotic[k]
        )
        if missing:
            ok = False
            print(f"FAIL: {len(missing)} specs missing under chaos: "
                  f"{[k[:12] for k in missing[:5]]}...")
        if mismatched:
            ok = False
            print(f"FAIL: {len(mismatched)} digest mismatches: "
                  f"{[k[:12] for k in mismatched[:5]]}...")
        if not missing and not mismatched:
            print(f"OK  all {len(clean)} per-spec digests bit-identical "
                  f"under chaos")

        # the injected epoch fault must be visible in the ledger and leave
        # a loadable quarantine bundle
        if counts.get("epoch-fault", 0) > 0:
            if total_fallbacks < 1:
                ok = False
                print("FAIL: epoch faults fired but no engine fallback "
                      "was recorded")
            bundles = list_bundles(chaos_dir)
            if not bundles:
                ok = False
                print("FAIL: epoch faults fired but no quarantine bundle "
                      "was written")
            else:
                b = load_bundle(bundles[0])
                print(f"OK  {len(bundles)} quarantine bundles; first: "
                      f"{b['label']} ({b['exc_type']})")
        elif counts:
            print("WARN: epoch-fault never fired with this seed/rate; "
                  "pick another --seed to exercise the fallback ladder")

    print("chaos soak: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
