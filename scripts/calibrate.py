"""Calibration check: per-benchmark lambda/beta at 1x window vs Table I targets,
plus intensity (MPKI), refresh overhead and ROP recovery."""
import sys, time
from repro import SystemConfig, RefreshMode
from repro.workloads import SPEC_PROFILES
from repro.cpu import run_cores
from repro.stats.refresh_analysis import analyze_rank, blocked_per_refresh

INSTR = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000_000
names = sys.argv[2].split(",") if len(sys.argv) > 2 else list(SPEC_PROFILES)

cfg = SystemConfig.single_core()
w = cfg.timings.refi
print(f"{'bench':11s} {'MPKI':>5s} {'lam':>5s}(tgt) {'beta':>5s}(tgt) {'ovh%':>5s} {'rop%':>5s} {'rec%':>5s} {'lockHR':>6s} {'blk/ref':>7s} t")
for name in names:
    p = SPEC_PROFILES[name]
    t0 = time.time()
    mt = p.memory_trace(INSTR, cfg.llc, seed=1)
    b = run_cores([mt], cfg, record_events=True)
    ev = b.events[(0, 0)]
    wa = analyze_rank(ev, w)
    blocked = blocked_per_refresh(ev)
    blk = blocked[blocked > 0]
    n = run_cores([mt], cfg.with_refresh_mode(RefreshMode.NONE))
    r = run_cores([mt], cfg.with_rop())
    gap = n.ipc - b.ipc
    rec = (r.ipc - b.ipc) / gap * 100 if gap > 1e-9 else float('nan')
    mpki = len(mt) / INSTR * 1000
    print(f"{name:11s} {mpki:5.1f} {wa.lam:5.2f}({p.paper_lambda:.2f}) {wa.beta:5.2f}({p.paper_beta:.2f}) "
          f"{(n.ipc/b.ipc-1)*100:5.2f} {(r.ipc/b.ipc-1)*100:5.2f} {rec:5.0f} "
          f"{r.stats.lock_hit_rate:6.2f} {blk.mean() if len(blk) else 0:7.2f} {time.time()-t0:.0f}s")
