#!/usr/bin/env python3
"""Smoke benchmark for the parallel runner + artifact cache.

Runs the Fig. 7/8/9 sweep at the smoke scale three times —

1. cold, sequential (``jobs=1``, fresh cache dir),
2. cold, parallel (``jobs=2`` by default, second fresh cache dir),
3. warm, over run 2's cache (must be 100% cache hits, zero simulations)

— asserts all three produce identical results, and appends a timing
record to ``BENCH_runner.json`` so successive PRs accumulate a
performance trajectory.

Usage::

    python scripts/bench_smoke.py [--jobs N] [--check] [--out BENCH_runner.json]

Exit code 0 means both correctness assertions held.  Each run is timed
in three phases — *setup* (cache repoint, memo clearing, scale
resolution), *compute* (the sweep itself) and *teardown* (state reset) —
so a regression shows where it landed, not just that it happened.

The ≥2× parallel speedup target only materializes on multi-core hosts;
the recorded ``speedup`` field tracks it either way.  ``--check``
additionally *fails* (nonzero exit) when the parallel run is slower than
sequential on a plan of ≥ 8 unique specs — a perf gate for hosts where
the speedup should exist.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BENCHMARKS = ("lbm", "libquantum", "bzip2", "gobmk")
SRAM_SIZES = (16, 64)

#: --check only gates plans at least this big: tiny plans are dominated
#: by pool startup, where parallel is legitimately slower
CHECK_MIN_SPECS = 8


def run_sweep(jobs: int, cache_dir: str) -> tuple[list[dict], dict, "object"]:
    """One cold/warm fig7/8/9 sweep against ``cache_dir``; returns
    (rows, per-phase wall seconds, runner stats)."""
    from repro.harness import fig7_8_9_rop_comparison, last_stats, scale_from_env
    from repro.harness.runner import clear_result_memo
    from repro.workloads.spec_profiles import clear_trace_cache

    t0 = time.perf_counter()
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    clear_result_memo()
    clear_trace_cache()
    scale = scale_from_env("smoke")
    t1 = time.perf_counter()
    rows = fig7_8_9_rop_comparison(BENCHMARKS, scale, sram_sizes=SRAM_SIZES, jobs=jobs)
    t2 = time.perf_counter()
    clear_trace_cache()  # drop mmap/trace state so the next sweep is cold
    t3 = time.perf_counter()
    phases = {
        "setup_s": t1 - t0,
        "compute_s": t2 - t1,
        "teardown_s": t3 - t2,
        "total_s": t3 - t0,
    }
    return rows, phases, last_stats()


def _phase_line(phases: dict) -> str:
    return (f"[setup {phases['setup_s']:.2f}s + compute {phases['compute_s']:.2f}s"
            f" + teardown {phases['teardown_s']:.2f}s]")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker count for the parallel run (default 2)")
    ap.add_argument("--check", action="store_true",
                    help=f"exit nonzero when the parallel run shows no "
                         f"speedup on a plan of >= {CHECK_MIN_SPECS} unique "
                         f"specs (perf gate for multi-core hosts)")
    ap.add_argument("--out", default="BENCH_runner.json",
                    help="timing-record file (appended to)")
    args = ap.parse_args()
    os.environ.setdefault("REPRO_SCALE", "smoke")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        seq_dir = os.path.join(tmp, "seq")
        par_dir = os.path.join(tmp, "par")

        rows_seq, ph_seq, stats_seq = run_sweep(1, seq_dir)
        t_seq = ph_seq["compute_s"]
        print(f"cold jobs=1 : {t_seq:6.2f}s  "
              f"({stats_seq.executed} simulated, {stats_seq.hits} cached)  "
              f"{_phase_line(ph_seq)}")

        rows_par, ph_par, stats_par = run_sweep(args.jobs, par_dir)
        t_par = ph_par["compute_s"]
        print(f"cold jobs={args.jobs} : {t_par:6.2f}s  "
              f"({stats_par.executed} simulated, {stats_par.hits} cached)  "
              f"{_phase_line(ph_par)}")

        assert json.dumps(rows_seq, sort_keys=True) == json.dumps(rows_par, sort_keys=True), \
            "parallel run diverged from sequential run"
        print("OK  jobs=1 and parallel results are identical")

        rows_warm, ph_warm, stats_warm = run_sweep(1, par_dir)
        t_warm = ph_warm["compute_s"]
        print(f"warm cache  : {t_warm:6.2f}s  "
              f"({stats_warm.executed} simulated, {stats_warm.hits} cached)  "
              f"{_phase_line(ph_warm)}")
        assert stats_warm.executed == 0, "warm cache re-ran simulations"
        assert stats_warm.hits == stats_warm.unique, "warm cache was not 100% hits"
        assert json.dumps(rows_warm, sort_keys=True) == json.dumps(rows_seq, sort_keys=True), \
            "warm-cache results diverged"
        print("OK  warm cache: 100% hits, identical results")

    record = {
        "bench": "fig7_8_9_smoke",
        "benchmarks": list(BENCHMARKS),
        "sram_sizes": list(SRAM_SIZES),
        "scale": os.environ.get("REPRO_SCALE", "smoke"),
        "cpus": os.cpu_count(),
        "jobs": args.jobs,
        "unique_runs": stats_seq.unique,
        "t_sequential_s": round(t_seq, 3),
        "t_parallel_s": round(t_par, 3),
        "t_warm_s": round(t_warm, 3),
        "phases": {
            "sequential": {k: round(v, 3) for k, v in ph_seq.items()},
            "parallel": {k: round(v, 3) for k, v in ph_par.items()},
            "warm": {k: round(v, 3) for k, v in ph_warm.items()},
        },
        "speedup": round(t_seq / t_par, 3) if t_par > 0 else None,
        "warm_speedup": round(t_seq / t_warm, 1) if t_warm > 0 else None,
        "engine_fallbacks": stats_par.engine_fallbacks,
        "quarantined": stats_par.quarantined,
        "cache_evictions": stats_par.cache_evictions,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded → {out} (speedup ×{record['speedup']}, "
          f"warm ×{record['warm_speedup']})")
    if args.check and stats_par.unique >= CHECK_MIN_SPECS and record["speedup"] < 1.0:
        print(f"CHECK FAILED: jobs={args.jobs} ran {1 / record['speedup']:.2f}x "
              f"slower than sequential on {stats_par.unique} unique specs "
              f"(host has {os.cpu_count()} CPUs)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
