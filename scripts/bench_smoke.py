#!/usr/bin/env python3
"""Smoke benchmark for the parallel runner + artifact cache.

Runs the Fig. 7/8/9 sweep at the smoke scale three times —

1. cold, sequential (``jobs=1``, fresh cache dir),
2. cold, parallel (``jobs=2`` by default, second fresh cache dir),
3. warm, over run 2's cache (must be 100% cache hits, zero simulations)

— asserts all three produce identical results, and appends a timing
record to ``BENCH_runner.json`` so successive PRs accumulate a
performance trajectory.

Usage::

    python scripts/bench_smoke.py [--jobs N] [--out BENCH_runner.json]

Exit code 0 means both correctness assertions held.  Note the ≥2×
parallel speedup target only materializes on multi-core hosts; the
recorded ``speedup`` field tracks it either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BENCHMARKS = ("lbm", "libquantum", "bzip2", "gobmk")
SRAM_SIZES = (16, 64)


def run_sweep(jobs: int, cache_dir: str) -> tuple[list[dict], float, "object"]:
    """One cold/warm fig7/8/9 sweep against ``cache_dir``; returns
    (rows, wall seconds, runner stats)."""
    from repro.harness import fig7_8_9_rop_comparison, last_stats, scale_from_env
    from repro.harness.runner import clear_result_memo
    from repro.workloads.spec_profiles import clear_trace_cache

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    clear_result_memo()
    clear_trace_cache()
    scale = scale_from_env("smoke")
    t0 = time.perf_counter()
    rows = fig7_8_9_rop_comparison(BENCHMARKS, scale, sram_sizes=SRAM_SIZES, jobs=jobs)
    return rows, time.perf_counter() - t0, last_stats()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=2,
                    help="worker count for the parallel run (default 2)")
    ap.add_argument("--out", default="BENCH_runner.json",
                    help="timing-record file (appended to)")
    args = ap.parse_args()
    os.environ.setdefault("REPRO_SCALE", "smoke")

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        seq_dir = os.path.join(tmp, "seq")
        par_dir = os.path.join(tmp, "par")

        rows_seq, t_seq, stats_seq = run_sweep(1, seq_dir)
        print(f"cold jobs=1 : {t_seq:6.2f}s  "
              f"({stats_seq.executed} simulated, {stats_seq.hits} cached)")

        rows_par, t_par, stats_par = run_sweep(args.jobs, par_dir)
        print(f"cold jobs={args.jobs} : {t_par:6.2f}s  "
              f"({stats_par.executed} simulated, {stats_par.hits} cached)")

        assert json.dumps(rows_seq, sort_keys=True) == json.dumps(rows_par, sort_keys=True), \
            "parallel run diverged from sequential run"
        print("OK  jobs=1 and parallel results are identical")

        rows_warm, t_warm, stats_warm = run_sweep(1, par_dir)
        print(f"warm cache  : {t_warm:6.2f}s  "
              f"({stats_warm.executed} simulated, {stats_warm.hits} cached)")
        assert stats_warm.executed == 0, "warm cache re-ran simulations"
        assert stats_warm.hits == stats_warm.unique, "warm cache was not 100% hits"
        assert json.dumps(rows_warm, sort_keys=True) == json.dumps(rows_seq, sort_keys=True), \
            "warm-cache results diverged"
        print("OK  warm cache: 100% hits, identical results")

    record = {
        "bench": "fig7_8_9_smoke",
        "benchmarks": list(BENCHMARKS),
        "sram_sizes": list(SRAM_SIZES),
        "scale": os.environ.get("REPRO_SCALE", "smoke"),
        "cpus": os.cpu_count(),
        "jobs": args.jobs,
        "unique_runs": stats_seq.unique,
        "t_sequential_s": round(t_seq, 3),
        "t_parallel_s": round(t_par, 3),
        "t_warm_s": round(t_warm, 3),
        "speedup": round(t_seq / t_par, 3) if t_par > 0 else None,
        "warm_speedup": round(t_seq / t_warm, 1) if t_warm > 0 else None,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"recorded → {out} (speedup ×{record['speedup']}, "
          f"warm ×{record['warm_speedup']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
